//! `tpn-session` — the memoized typed-artifact pipeline.
//!
//! The paper's workflow is a fixed derivation chain — net → timed
//! reachability graph → decision graph → traversal rates → performance
//! expressions, and, for parametrised nets, → lifted domain → compiled
//! program. Every consumer of the workspace (library callers, the
//! analysis daemon, the CLI) walks some prefix of that chain, and
//! before this crate each of them re-derived it from scratch per call.
//!
//! A [`Session`] is a thread-safe handle over one [`TimedPetriNet`]
//! that computes each stage **lazily**, **at most once**, and shares
//! the result as an [`Arc`] with every caller:
//!
//! | accessor | artifact |
//! |---|---|
//! | [`Session::trg`] | numeric timed reachability graph |
//! | [`Session::decision_graph`] | collapsed decision graph |
//! | [`Session::rates`] | solved traversal rates |
//! | [`Session::performance`] | assembled performance measures |
//! | [`Session::lifted`] | symbolic lift (per swept-symbol list) |
//! | [`Session::compiled`] | compiled expression program (per request shape) |
//!
//! Under concurrent demand exactly one thread builds a vacant
//! artifact; the others block on the build and receive the same `Arc`.
//! Failures are memoized too: a net whose TRG construction fails keeps
//! failing cheaply instead of re-exploring the state space per request.
//! Per-stage hit/miss/build counters ([`StageCounters`]) make the
//! sharing observable — they feed the daemon's `/stats` endpoint.
//!
//! # Quickstart
//!
//! ```
//! use tpn_session::{Session, SessionOptions};
//!
//! let net = tpn_net::parse_tpn(
//!     "net c\nplace a init 1\nplace b\n\
//!      trans go in a out b firing 2\ntrans back in b out a firing 3",
//! )
//! .unwrap();
//! let session = Session::new(net, SessionOptions::new());
//!
//! // The full chain, each stage computed once and shared:
//! let perf = session.performance().unwrap();
//! let dg = session.decision_graph().unwrap();
//! let go = session.net().transition_by_name("go").unwrap();
//! assert_eq!(perf.throughput(&dg, go).to_string(), "1/5");
//!
//! // A second demand is a cache hit on the same Arc.
//! assert!(std::sync::Arc::ptr_eq(&perf, &session.performance().unwrap()));
//! ```

mod error;
mod options;
mod stats;

pub use error::{RetimeError, SessionError};
pub use options::SessionOptions;
pub use stats::{Stage, StageCounters, StageSnapshot, STAGES};

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use tpn_core::{solve_rates_with, DecisionGraph, ExprTarget, Performance, RateMethod, Rates};
use tpn_eval::Compiled;
use tpn_net::{symbols, Frequency, TimedPetriNet, TimingAssignment};
use tpn_rational::Rational;
use tpn_reach::{build_trg, LiftedDomain, NumericDomain, TimedReachabilityGraph, TrgTemplate};
use tpn_symbolic::{RatFn, Symbol};

/// One memoized artifact slot: `OnceLock` gives once-only
/// initialisation with blocking followers, and the stored `Result`
/// memoizes failures alongside successes.
type Cell<T> = OnceLock<Result<Arc<T>, SessionError>>;

/// The lifted derivation chain for one swept-symbol list: domain (with
/// its recorded validity region), TRG, decision graph and performance
/// measures, all over [`LiftedDomain`].
#[derive(Debug)]
pub struct LiftedArtifacts {
    /// The swept symbols, in the order the artifact was demanded with.
    pub swept: Vec<Symbol>,
    /// The lifted domain; holds the base point and validity region.
    pub domain: LiftedDomain,
    /// The symbolic timed reachability graph.
    pub trg: TimedReachabilityGraph<LiftedDomain>,
    /// The collapsed decision graph.
    pub dg: DecisionGraph<LiftedDomain>,
    /// Performance measures with symbolic closed forms.
    pub perf: Performance<LiftedDomain>,
    /// The re-timing template over `trg` — the graph pre-evaluated at
    /// the base point with only the symbol-carrying labels kept
    /// symbolic — built lazily on the first [`Session::retimed`]
    /// against this lift and shared by all later re-timings.
    template: OnceLock<Option<TrgTemplate<LiftedDomain, NumericDomain>>>,
}

impl LiftedArtifacts {
    /// The memoized re-timing template (see the `template` field).
    /// `None` only if a label fails to evaluate at the base point,
    /// which a successfully built lift precludes.
    fn retiming_template(&self) -> Option<&TrgTemplate<LiftedDomain, NumericDomain>> {
        self.template
            .get_or_init(|| {
                let base = self.domain.base();
                self.trg.template(
                    |t| t.eval(base),
                    |p| p.eval(base),
                    |t| !t.is_constant(),
                    |p| !p.symbols().is_empty(),
                )
            })
            .as_ref()
    }
}

/// A compiled expression program for one request shape: the exported
/// closed forms of `targets` in the lifted domain of `swept`, compiled
/// to a shared-subexpression bytecode program (with partial derivatives
/// when `derivatives` was requested).
#[derive(Debug)]
pub struct CompiledArtifacts {
    /// The swept symbols, in demand order.
    pub swept: Vec<Symbol>,
    /// The exported targets, in demand (column) order.
    pub targets: Vec<ExprTarget>,
    /// The lifted chain the exprs were exported from — retained here
    /// so consumers of a compiled hit (which need the validity region
    /// alongside the program) never re-demand the lift, even after the
    /// lifted shape map evicted it.
    pub lifted: Arc<LiftedArtifacts>,
    /// The exported closed forms, one per target.
    pub exprs: Vec<RatFn>,
    /// The compiled program over `exprs`.
    pub program: Compiled,
    /// Whether `program` also evaluates `∂expr/∂symbol` outputs.
    pub derivatives: bool,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CompiledKey {
    swept: Vec<Symbol>,
    targets: Vec<ExprTarget>,
    derivatives: bool,
}

/// Most distinct lifted (swept-symbol-list) artifacts one session
/// retains; the least-recently-demanded shape is dropped beyond this.
/// Keys are demand-order-sensitive and client-chosen, so without a cap
/// a request stream cycling over axis subsets would grow a long-lived
/// session without bound.
const MAX_LIFTED_SHAPES: usize = 32;

/// Most distinct compiled `(swept, targets, derivatives)` shapes one
/// session retains (see [`MAX_LIFTED_SHAPES`]).
const MAX_COMPILED_SHAPES: usize = 64;

/// A bounded keyed cell store: least-recently-demanded shapes are
/// evicted beyond `cap`. Eviction only drops the *map's* handle —
/// in-flight holders keep their `Arc`, and a re-demand of an evicted
/// shape simply rebuilds (counted as a fresh miss + build).
struct ShapeMap<K, T> {
    map: HashMap<K, (Arc<Cell<T>>, u64)>,
    clock: u64,
    cap: usize,
}

impl<K: Clone + Eq + std::hash::Hash, T> ShapeMap<K, T> {
    fn new(cap: usize) -> ShapeMap<K, T> {
        ShapeMap {
            map: HashMap::new(),
            clock: 0,
            cap,
        }
    }

    /// The cell for `key`, created (and LRU-evicting) as needed.
    fn cell(&mut self, key: &K) -> Arc<Cell<T>> {
        self.clock += 1;
        let tick = self.clock;
        if let Some((cell, used)) = self.map.get_mut(key) {
            *used = tick;
            return Arc::clone(cell);
        }
        let cell: Arc<Cell<T>> = Arc::new(OnceLock::new());
        self.map.insert(key.clone(), (Arc::clone(&cell), tick));
        while self.map.len() > self.cap {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map");
            self.map.remove(&victim);
        }
        cell
    }
}

/// A thread-safe, memoizing handle over one net's derivation chain.
/// See the [crate docs](crate) for the artifact table and sharing
/// semantics. Cheap to share: wrap it in an [`Arc`] and hand clones to
/// every consumer of the same net.
pub struct Session {
    net: Arc<TimedPetriNet>,
    options: SessionOptions,
    counters: Arc<StageCounters>,
    domain: NumericDomain,
    trg: Cell<TimedReachabilityGraph<NumericDomain>>,
    dg: Cell<DecisionGraph<NumericDomain>>,
    rates: Cell<Rates<Rational>>,
    perf: Cell<Performance<NumericDomain>>,
    lifted: Mutex<ShapeMap<Vec<Symbol>, LiftedArtifacts>>,
    compiled: Mutex<ShapeMap<CompiledKey, CompiledArtifacts>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("net", &self.net.name())
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

/// The shared demand protocol: hit if the cell is already resolved,
/// otherwise miss and race to build — `OnceLock` guarantees exactly
/// one `build` run; losers block and clone the winner's result. The
/// winning build is timed into the stage's duration histogram and, if
/// the demanding thread is tracing its request, recorded as a span
/// named after the stage.
fn demand<T>(
    counters: &StageCounters,
    stage: Stage,
    cell: &Cell<T>,
    build: impl FnOnce() -> Result<T, SessionError>,
) -> Result<Arc<T>, SessionError> {
    if let Some(resolved) = cell.get() {
        counters.hit(stage);
        return resolved.clone();
    }
    counters.miss(stage);
    cell.get_or_init(|| {
        let _span = tpn_obs::trace::span(stage.name());
        let start = std::time::Instant::now();
        let built = build().map(Arc::new);
        counters.build_timed(stage, start.elapsed());
        built
    })
    .clone()
}

impl Session {
    /// A fresh session over `net` with its own counters.
    pub fn new(net: TimedPetriNet, options: SessionOptions) -> Session {
        Session::with_counters(net, options, Arc::new(StageCounters::new()))
    }

    /// A fresh session whose stage counters are shared with the caller
    /// — the daemon passes one `StageCounters` to every session it
    /// creates so `/stats` aggregates artifact effectiveness
    /// service-wide.
    pub fn with_counters(
        net: TimedPetriNet,
        options: SessionOptions,
        counters: Arc<StageCounters>,
    ) -> Session {
        Session {
            net: Arc::new(net),
            options,
            counters,
            domain: NumericDomain::new(),
            trg: OnceLock::new(),
            dg: OnceLock::new(),
            rates: OnceLock::new(),
            perf: OnceLock::new(),
            lifted: Mutex::new(ShapeMap::new(MAX_LIFTED_SHAPES)),
            compiled: Mutex::new(ShapeMap::new(MAX_COMPILED_SHAPES)),
        }
    }

    /// The net this session derives from.
    pub fn net(&self) -> &TimedPetriNet {
        &self.net
    }

    /// The net as a shareable handle.
    pub fn net_arc(&self) -> Arc<TimedPetriNet> {
        Arc::clone(&self.net)
    }

    /// The configuration every artifact of this session obeys.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// The stage counters (shared if the session was created with
    /// [`Session::with_counters`]).
    pub fn counters(&self) -> &Arc<StageCounters> {
        &self.counters
    }

    /// One stage's counter snapshot.
    pub fn stage_stats(&self, stage: Stage) -> StageSnapshot {
        self.counters.snapshot(stage)
    }

    /// The numeric timed reachability graph (paper §2), built once.
    pub fn trg(&self) -> Result<Arc<TimedReachabilityGraph<NumericDomain>>, SessionError> {
        demand(&self.counters, Stage::Trg, &self.trg, || {
            build_trg(&self.net, &self.domain, &self.options.trg_options())
                .map_err(|e| SessionError::new(Stage::Trg, e))
        })
    }

    /// The decision graph collapsed from [`Session::trg`].
    pub fn decision_graph(&self) -> Result<Arc<DecisionGraph<NumericDomain>>, SessionError> {
        demand(&self.counters, Stage::DecisionGraph, &self.dg, || {
            let trg = self.trg()?;
            DecisionGraph::from_trg(&trg, &self.domain)
                .map_err(|e| SessionError::new(Stage::DecisionGraph, e))
        })
    }

    /// The traversal rates of [`Session::decision_graph`], normalised
    /// against reference edge 0 and solved with the configured
    /// [`SessionOptions::rate_method`].
    pub fn rates(&self) -> Result<Arc<Rates<Rational>>, SessionError> {
        demand(&self.counters, Stage::Rates, &self.rates, || {
            let dg = self.decision_graph()?;
            solve_rates_with(&dg, 0, self.options.rate_method_or_default())
                .map_err(|e| SessionError::new(Stage::Rates, e))
        })
    }

    /// The assembled performance measures (throughput, utilisation,
    /// cycle time) over [`Session::rates`].
    pub fn performance(&self) -> Result<Arc<Performance<NumericDomain>>, SessionError> {
        demand(&self.counters, Stage::Performance, &self.perf, || {
            let dg = self.decision_graph()?;
            let rates = self.rates()?;
            Performance::new(&dg, (*rates).clone(), &self.domain)
                .map_err(|e| SessionError::new(Stage::Performance, e))
        })
    }

    /// The lifted derivation chain for `swept`: the named attributes
    /// become symbols, comparisons are frozen at the net's base point,
    /// and the TRG/decision-graph/rates/performance chain is re-derived
    /// symbolically — once per distinct `swept` list, shared by every
    /// sweep and optimize request over it.
    pub fn lifted(&self, swept: &[Symbol]) -> Result<Arc<LiftedArtifacts>, SessionError> {
        let cell = self
            .lifted
            .lock()
            .expect("lifted map lock")
            .cell(&swept.to_vec());
        demand(&self.counters, Stage::Lifted, &cell, || {
            self.build_lifted(swept)
        })
    }

    fn build_lifted(&self, swept: &[Symbol]) -> Result<LiftedArtifacts, SessionError> {
        let err = |e: &dyn std::fmt::Display| SessionError::new(Stage::Lifted, e);
        let domain = LiftedDomain::new(&self.net, swept).map_err(|e| err(&e))?;
        let trg =
            build_trg(&self.net, &domain, &self.options.trg_options()).map_err(|e| err(&e))?;
        let dg = DecisionGraph::from_trg(&trg, &domain).map_err(|e| err(&e))?;
        // The symbolic solve always uses the sparse fixed-reference
        // eliminator: every elementary operation over the lifted field
        // allocates, so the dense kernel's full-matrix sweeps cost an
        // order of magnitude more for the same (exactly agreeing)
        // rates. Non-ergodic graphs still fail: fixing one equation of
        // a system with a ≥2-dimensional null space leaves it singular.
        let rates = solve_rates_with(&dg, 0, RateMethod::SparseFixed).map_err(|e| err(&e))?;
        let perf = Performance::new(&dg, rates, &domain).map_err(|e| err(&e))?;
        Ok(LiftedArtifacts {
            swept: swept.to_vec(),
            domain,
            trg,
            dg,
            perf,
            template: OnceLock::new(),
        })
    }

    /// The re-timable attributes of this session's net: one symbol per
    /// strictly-positive known attribute, in transition order (E, F, f
    /// per transition). [`Session::retimed`] accepts exactly these
    /// names; each call lifts over the subset its perturbation actually
    /// names.
    pub fn retimable_symbols(&self) -> Vec<Symbol> {
        let mut syms = Vec::new();
        for t in self.net.transitions() {
            let tr = self.net.transition(t);
            if let Some(v) = tr.enabling().known() {
                if v.is_positive() {
                    syms.push(symbols::enabling(tr.name()));
                }
            }
            if let Some(v) = tr.firing().known() {
                if v.is_positive() {
                    syms.push(symbols::firing(tr.name()));
                }
            }
            if let Frequency::Weight(w) = tr.frequency() {
                if w.is_positive() {
                    syms.push(symbols::frequency(tr.name()));
                }
            }
        }
        syms
    }

    /// A session over this net re-timed by `timing` (a partial override
    /// of attribute values, `"E(t)"`/`"F(t)"`/`"f(t)"` keys), answered
    /// **incrementally**: instead of rebuilding the reachability graph
    /// for the perturbed net, a lift over exactly the perturbed
    /// attributes — memoized per attribute set, so every re-timing
    /// naming the same attributes shares one skeleton — is instantiated
    /// at the perturbed point. Because all arithmetic is exact
    /// rational, the seeded graphs — and every artifact derived from
    /// them — are byte-identical to what a cold session over the
    /// perturbed net would compute.
    ///
    /// The substitution is only valid while the perturbed point keeps
    /// every comparison frozen during the lifted construction: points
    /// outside that recorded region are rejected with
    /// [`RetimeError::OutOfRegion`] (rebuild cold instead). Overrides
    /// must name known attributes with strictly positive base *and* new
    /// values — zero times and frequencies are structural statements,
    /// not timings ([`RetimeError::Invalid`]).
    ///
    /// The returned session shares this session's options and stage
    /// counters; its graph, rates and performance cells are pre-seeded
    /// from the lift's re-timing template and symbolic closed forms
    /// (evaluation at an in-region point is a ring homomorphism, so the
    /// seeded artifacts equal what a cold rebuild would produce), while
    /// any lifted/compiled artifacts of the perturbed net itself rebuild
    /// lazily as usual.
    pub fn retimed(&self, timing: &TimingAssignment) -> Result<Session, RetimeError> {
        // The perturbed net (validates names and rejects negatives).
        let perturbed = self
            .net
            .with_timing(timing)
            .map_err(|e| RetimeError::Invalid(e.to_string()))?;
        // Validate every override before touching the lift: each must
        // name a re-timable attribute (strictly positive base — zero
        // times and frequencies are structural) and carry a strictly
        // positive new value.
        let retimable = self.retimable_symbols();
        for (name, value) in timing.iter() {
            if !retimable.contains(&Symbol::intern(name)) {
                return Err(RetimeError::Invalid(format!(
                    "cannot re-time {name}: its base value is not strictly positive \
                     (zero times and frequencies are structural)"
                )));
            }
            if !value.is_positive() {
                return Err(RetimeError::Invalid(format!(
                    "cannot re-time {name} to {value}: the new value must be \
                     strictly positive"
                )));
            }
        }
        // The shared skeleton: a lift over exactly the perturbed
        // attributes, in net order (so any two re-timings naming the
        // same set share one ShapeMap cell). Classify the demand before
        // making it: a hit means the skeleton was already materialised.
        let swept: Vec<Symbol> = retimable
            .into_iter()
            .filter(|s| timing.iter().any(|(name, _)| Symbol::intern(name) == *s))
            .collect();
        let already = {
            let mut map = self.lifted.lock().expect("lifted map lock");
            map.cell(&swept).get().is_some()
        };
        if already {
            self.counters.hit(Stage::Retimed);
        } else {
            self.counters.miss(Stage::Retimed);
        }
        let lifted = self.lifted(&swept)?;
        // The perturbed point: base values overridden by `timing`.
        let mut point = lifted.domain.base().clone();
        for (name, value) in timing.iter() {
            point.set(Symbol::intern(name), *value);
        }
        lifted
            .domain
            .check_point(&point)
            .map_err(|e| RetimeError::OutOfRegion(e.to_string()))?;
        // Instantiate the skeleton at the point and seed a fresh session
        // over the perturbed net; downstream stages (rates, performance)
        // rebuild lazily from the seeded decision graph as usual. The
        // substitution is the Retimed stage's "build": time it like any
        // other stage execution.
        let _span = tpn_obs::trace::span(Stage::Retimed.name());
        let build_start = std::time::Instant::now();
        let internal = || {
            RetimeError::Pipeline(SessionError::new(
                Stage::Retimed,
                "internal: a lifted label failed to evaluate at the checked point",
            ))
        };
        let template = lifted.retiming_template().ok_or_else(internal)?;
        let trg = template
            .instantiate(|t| t.eval(&point), |p| p.eval(&point))
            .ok_or_else(internal)?;
        let dg = lifted
            .dg
            .map::<NumericDomain, _, _>(|t| t.eval(&point), |p| p.eval(&point))
            .ok_or_else(internal)?;
        let perf = lifted
            .perf
            .map::<NumericDomain, _>(|p| p.eval(&point))
            .ok_or_else(internal)?;
        let rates = perf.rates().clone();
        let session =
            Session::with_counters(perturbed, self.options.clone(), Arc::clone(&self.counters));
        let _ = session.trg.set(Ok(Arc::new(trg)));
        let _ = session.dg.set(Ok(Arc::new(dg)));
        let _ = session.rates.set(Ok(Arc::new(rates)));
        let _ = session.perf.set(Ok(Arc::new(perf)));
        self.counters
            .build_timed(Stage::Retimed, build_start.elapsed());
        Ok(session)
    }

    /// The compiled program for `(swept, targets)`: exports each
    /// target's closed form from [`Session::lifted`] and compiles them
    /// into one shared-subexpression program (with partial derivatives
    /// with respect to every swept symbol when `derivatives` is set).
    /// Memoized per request shape; a `/sweep` and an `/optimize` naming
    /// the same targets share both the lift and the program.
    pub fn compiled(
        &self,
        swept: &[Symbol],
        targets: &[ExprTarget],
        derivatives: bool,
    ) -> Result<Arc<CompiledArtifacts>, SessionError> {
        let key = CompiledKey {
            swept: swept.to_vec(),
            targets: targets.to_vec(),
            derivatives,
        };
        let cell = self.compiled.lock().expect("compiled map lock").cell(&key);
        demand(&self.counters, Stage::Compiled, &cell, || {
            let lifted = self.lifted(swept)?;
            let exprs: Vec<RatFn> = targets
                .iter()
                .map(|&t| {
                    lifted
                        .perf
                        .export_expr(&lifted.dg, &lifted.trg, &lifted.domain, t)
                })
                .collect();
            let program = if derivatives {
                Compiled::compile_with_derivatives(&exprs, swept)
            } else {
                Compiled::compile(&exprs)
            };
            Ok(CompiledArtifacts {
                swept: swept.to_vec(),
                targets: targets.to_vec(),
                lifted,
                exprs,
                program,
                derivatives,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_net::parse_tpn;

    const CYCLE: &str = "net c\nplace a init 1\nplace b\n\
        trans go in a out b firing 2\ntrans back in b out a firing 3";

    fn session() -> Session {
        Session::new(parse_tpn(CYCLE).unwrap(), SessionOptions::new())
    }

    #[test]
    fn stages_build_once_and_share_arcs() {
        let s = session();
        let trg1 = s.trg().unwrap();
        let trg2 = s.trg().unwrap();
        assert!(Arc::ptr_eq(&trg1, &trg2));
        let snap = s.stage_stats(Stage::Trg);
        assert_eq!((snap.hits, snap.misses, snap.builds), (1, 1, 1));
        // performance demands the whole chain exactly once
        let perf = s.performance().unwrap();
        let dg = s.decision_graph().unwrap();
        let go = s.net().transition_by_name("go").unwrap();
        assert_eq!(perf.throughput(&dg, go).to_string(), "1/5");
        for stage in [Stage::DecisionGraph, Stage::Rates, Stage::Performance] {
            assert_eq!(s.stage_stats(stage).builds, 1, "{stage:?}");
        }
        // the TRG was never rebuilt for the downstream stages
        assert_eq!(s.stage_stats(Stage::Trg).builds, 1);
    }

    #[test]
    fn failures_are_memoized() {
        let dead =
            parse_tpn("net d\nplace a init 1\nplace b\ntrans t in a out b firing 1").unwrap();
        let s = Session::new(dead, SessionOptions::new());
        let e1 = s.rates().unwrap_err();
        let e2 = s.rates().unwrap_err();
        assert_eq!(e1, e2);
        // the chain fails where the acyclicity is discovered
        assert_eq!(e1.stage(), Stage::DecisionGraph);
        // the failed solve ran once; the second demand was a hit
        let snap = s.stage_stats(Stage::Rates);
        assert_eq!((snap.hits, snap.builds), (1, 1));
    }

    #[test]
    fn lifted_and_compiled_memoize_per_shape() {
        let s = session();
        let sym = tpn_net::symbols::firing("go");
        let l1 = s.lifted(&[sym]).unwrap();
        let l2 = s.lifted(&[sym]).unwrap();
        assert!(Arc::ptr_eq(&l1, &l2));
        assert_eq!(s.stage_stats(Stage::Lifted).builds, 1);
        let go = s.net().transition_by_name("go").unwrap();
        let t = ExprTarget::Throughput(go);
        let c1 = s.compiled(&[sym], &[t], false).unwrap();
        let c2 = s.compiled(&[sym], &[t], false).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2));
        // derivatives are a distinct shape
        let c3 = s.compiled(&[sym], &[t], true).unwrap();
        assert!(!Arc::ptr_eq(&c1, &c3));
        let snap = s.stage_stats(Stage::Compiled);
        assert_eq!((snap.hits, snap.builds), (1, 2));
        // both shapes shared the one lift
        assert_eq!(s.stage_stats(Stage::Lifted).builds, 1);
    }

    #[test]
    fn shape_maps_evict_least_recently_demanded_beyond_cap() {
        let mut m: ShapeMap<u32, u32> = ShapeMap::new(2);
        let kept = m.cell(&1);
        let _ = m.cell(&2);
        let _ = m.cell(&1); // touch 1 → 2 becomes the LRU victim
        let _ = m.cell(&3); // over cap: evicts 2
        assert_eq!(m.map.len(), 2);
        assert!(m.map.contains_key(&1) && m.map.contains_key(&3));
        // the evicted shape's in-flight holders keep their Arc; a fresh
        // demand of the evicted key gets a new, unresolved cell
        assert!(m.cell(&2).get().is_none());
        drop(kept);
    }

    #[test]
    fn retimed_matches_cold_session_exactly() {
        let s = session();
        let timing = TimingAssignment::new().with("F(back)".to_string(), Rational::from_int(7));
        let warm = s.retimed(&timing).unwrap();
        // A cold session over the textually perturbed net.
        let cold_net = parse_tpn(&CYCLE.replace("firing 3", "firing 7")).unwrap();
        assert_eq!(warm.net().digest(), cold_net.digest());
        let cold = Session::new(cold_net, SessionOptions::new());
        let go = warm.net().transition_by_name("go").unwrap();
        let wd = warm.decision_graph().unwrap();
        let cd = cold.decision_graph().unwrap();
        assert_eq!(wd.describe(warm.net()), cd.describe(cold.net()));
        assert_eq!(
            warm.performance().unwrap().throughput(&wd, go),
            cold.performance().unwrap().throughput(&cd, go)
        );
        assert_eq!(
            warm.performance().unwrap().throughput(&wd, go).to_string(),
            "1/9"
        );
        // No TRG build ran for the re-timed session: its cells were
        // seeded from the lift (the one recorded build is the base
        // session's lifted chain, not a Stage::Trg build).
        assert_eq!(s.counters().snapshot(Stage::Trg).builds, 0);
        let retimed = s.counters().snapshot(Stage::Retimed);
        assert_eq!((retimed.misses, retimed.builds), (1, 1));
        // A second re-timing of the same attribute hits the memoized
        // per-attribute-set lift.
        let timing2 = TimingAssignment::new().with("F(back)".to_string(), Rational::from_int(5));
        s.retimed(&timing2).unwrap();
        assert_eq!(s.counters().snapshot(Stage::Retimed).hits, 1);
        assert_eq!(s.counters().snapshot(Stage::Lifted).builds, 1);
        // Perturbing a different attribute sweeps a different symbol
        // set: a fresh (smaller) lift, not a hit on the first one.
        let other = TimingAssignment::new().with("F(go)".to_string(), Rational::from_int(5));
        s.retimed(&other).unwrap();
        assert_eq!(s.counters().snapshot(Stage::Retimed).hits, 1);
        assert_eq!(s.counters().snapshot(Stage::Lifted).builds, 2);
    }

    #[test]
    fn retimed_rejects_invalid_and_out_of_region_perturbations() {
        let s = session();
        // Unknown attribute name.
        let bad = TimingAssignment::new().with("F(nope)".to_string(), Rational::from_int(1));
        assert!(matches!(s.retimed(&bad), Err(RetimeError::Invalid(_))));
        // Structural attribute: enabling times default to zero.
        let structural = TimingAssignment::new().with("E(go)".to_string(), Rational::from_int(1));
        assert!(matches!(
            s.retimed(&structural),
            Err(RetimeError::Invalid(_))
        ));
        // Non-positive new value.
        let zeroed = TimingAssignment::new().with("F(go)".to_string(), Rational::ZERO);
        assert!(matches!(s.retimed(&zeroed), Err(RetimeError::Invalid(_))));
        // In this deterministic cycle any positive timing stays in
        // region, so exercise OutOfRegion through a min choice: two
        // concurrent branches joined back together.
        let net = parse_tpn(
            "net fj\nplace s init 1\nplace a\nplace b\nplace a2\nplace b2\n\
             trans fork in s out a,b firing 1\n\
             trans fast in a out a2 firing 1\n\
             trans slow in b out b2 firing 2\n\
             trans join in a2,b2 out s firing 1",
        )
        .unwrap();
        let s = Session::new(net, SessionOptions::new());
        let ok = TimingAssignment::new().with("F(slow)".to_string(), Rational::new(3, 2));
        s.retimed(&ok).unwrap();
        let flip = TimingAssignment::new().with("F(slow)".to_string(), Rational::new(1, 2));
        let err = s.retimed(&flip).unwrap_err();
        assert!(matches!(err, RetimeError::OutOfRegion(_)), "{err}");
        assert!(err.to_string().contains("validity region"), "{err}");
    }

    #[test]
    fn options_flow_into_the_trg_build() {
        let net = parse_tpn(CYCLE).unwrap();
        let s = Session::new(net, SessionOptions::new().max_states(1));
        let e = s.trg().unwrap_err();
        assert_eq!(e.stage(), Stage::Trg);
        assert!(e.to_string().contains("exceeded 1 states"), "{e}");
    }
}
