//! Session errors.

use std::fmt;

use crate::Stage;

/// Why a pipeline stage could not be materialised.
///
/// The `Display` form is exactly the underlying stage error's message —
/// no session-specific prefix — so consumers that render errors (the
/// service's 422 bodies, the CLI) produce the same bytes whether a
/// computation ran standalone or through a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionError {
    stage: Stage,
    message: String,
}

impl SessionError {
    pub(crate) fn new(stage: Stage, message: impl fmt::Display) -> SessionError {
        SessionError {
            stage,
            message: message.to_string(),
        }
    }

    /// The stage that failed.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The underlying error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SessionError {}
