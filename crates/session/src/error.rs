//! Session errors.

use std::fmt;

use crate::Stage;

/// Why a pipeline stage could not be materialised.
///
/// The `Display` form is exactly the underlying stage error's message —
/// no session-specific prefix — so consumers that render errors (the
/// service's 422 bodies, the CLI) produce the same bytes whether a
/// computation ran standalone or through a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionError {
    stage: Stage,
    message: String,
}

impl SessionError {
    pub(crate) fn new(stage: Stage, message: impl fmt::Display) -> SessionError {
        SessionError {
            stage,
            message: message.to_string(),
        }
    }

    /// The stage that failed.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The underlying error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SessionError {}

/// Why [`Session::retimed`](crate::Session::retimed) rejected or failed
/// a re-timing. The three variants matter to callers because they map
/// to different failure classes: a malformed request
/// ([`RetimeError::Invalid`]), a perturbation the incremental machinery
/// provably cannot answer ([`RetimeError::OutOfRegion`] — rebuild cold
/// instead), and an analysis failure of the shared lift itself
/// ([`RetimeError::Pipeline`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetimeError {
    /// The perturbation is invalid regardless of region: an unknown
    /// attribute name, a non-positive new value, or an attribute whose
    /// base value is zero or unknown (structural, not re-timable).
    Invalid(String),
    /// The perturbed point leaves the validity region recorded while
    /// building the lifted skeleton; reusing it there would be wrong.
    OutOfRegion(String),
    /// The shared full lift could not be materialised.
    Pipeline(SessionError),
}

impl fmt::Display for RetimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetimeError::Invalid(m) | RetimeError::OutOfRegion(m) => f.write_str(m),
            RetimeError::Pipeline(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RetimeError {}

impl From<SessionError> for RetimeError {
    fn from(e: SessionError) -> RetimeError {
        RetimeError::Pipeline(e)
    }
}
