//! Session configuration.

use tpn_core::RateMethod;
use tpn_reach::TrgOptions;

/// Every knob of a [`Session`](crate::Session), with a builder API.
///
/// This replaces the per-call option structs the pipeline stages take
/// individually (`TrgOptions`, sweep thread counts, point caps): a
/// session is configured once and every artifact it materialises obeys
/// the same limits. All defaults match the standalone defaults, so a
/// default session computes byte-identical results to the manual
/// call chain.
///
/// ```
/// use tpn_session::SessionOptions;
///
/// let opts = SessionOptions::new()
///     .threads(8)        // sweep/compile evaluation fan-out
///     .max_states(50_000) // TRG exploration limit
///     .max_points(10_000);
/// assert_eq!(opts.threads_or_default(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOptions {
    max_states: usize,
    trg_threads: usize,
    threads: usize,
    max_points: u64,
    rate_method: RateMethod,
}

impl Default for SessionOptions {
    fn default() -> SessionOptions {
        SessionOptions {
            max_states: TrgOptions::default().max_states,
            trg_threads: TrgOptions::default().threads,
            threads: 4,
            max_points: 1_000_000,
            rate_method: RateMethod::default(),
        }
    }
}

impl SessionOptions {
    /// The default configuration (identical to each stage's standalone
    /// defaults).
    pub fn new() -> SessionOptions {
        SessionOptions::default()
    }

    /// Maximum number of TRG states to explore before the `trg` stage
    /// fails (default 100 000).
    pub fn max_states(mut self, n: usize) -> SessionOptions {
        self.max_states = n;
        self
    }

    /// Worker threads for TRG frontier expansion: `1` (the default)
    /// builds serially, `0` uses the machine's parallelism. State
    /// numbering is identical at every setting.
    pub fn trg_threads(mut self, n: usize) -> SessionOptions {
        self.trg_threads = n;
        self
    }

    /// Worker threads for compiled-expression evaluation (sweeps,
    /// optimizer seeding). Output is identical at any count.
    pub fn threads(mut self, n: usize) -> SessionOptions {
        self.threads = n;
        self
    }

    /// Maximum grid points a sweep through this session may evaluate.
    pub fn max_points(mut self, n: u64) -> SessionOptions {
        self.max_points = n;
        self
    }

    /// How the homogeneous rate system is solved — the pipeline's one
    /// genuine algorithm choice (dense kernel, dense fixed-reference or
    /// sparse fixed-reference; all agree exactly).
    pub fn rate_method(mut self, m: RateMethod) -> SessionOptions {
        self.rate_method = m;
        self
    }

    /// The configured TRG state limit.
    pub fn max_states_or_default(&self) -> usize {
        self.max_states
    }

    /// The configured TRG thread count.
    pub fn trg_threads_or_default(&self) -> usize {
        self.trg_threads
    }

    /// The configured evaluation thread count.
    pub fn threads_or_default(&self) -> usize {
        self.threads
    }

    /// The configured sweep point cap.
    pub fn max_points_or_default(&self) -> u64 {
        self.max_points
    }

    /// The configured rate-solving method.
    pub fn rate_method_or_default(&self) -> RateMethod {
        self.rate_method
    }

    /// The `TrgOptions` this session hands to `build_trg`.
    pub fn trg_options(&self) -> TrgOptions {
        TrgOptions {
            max_states: self.max_states,
            threads: self.trg_threads,
        }
    }
}
