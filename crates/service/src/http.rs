//! The hand-rolled HTTP/1.1 front end.
//!
//! No external dependency and no async runtime. Two listeners share
//! one routing table and one incremental parser
//! ([`tpn_aio::http1`]), selected by [`ServiceConfig::io`]:
//!
//! - **Threaded** (the library default): an accept thread hands each
//!   connection to the fixed [`ThreadPool`], whose bounded queue is
//!   the server's backpressure. One request per connection
//!   (`Connection: close`).
//! - **Epoll** (`tpn serve` default on Linux): the edge-triggered
//!   reactor in `crate::aio_server` — keep-alive, pipelining,
//!   admission control and chunked streaming of large bodies, with
//!   compute still dispatched to the same [`ThreadPool`].
//!
//! Routes:
//!
//! | method | path | body | reply |
//! |---|---|---|---|
//! | POST | `/analyze` | `.tpn` text | rates, weights, throughputs |
//! | POST | `/graph` | `.tpn` text | TRG summary + state table |
//! | POST | `/correctness` | `.tpn` text | deadlock/safeness/liveness |
//! | POST | `/invariants` | `.tpn` text | P-/T-semiflows |
//! | POST | `/simulate?events=N&seed=S` | `.tpn` text | Monte-Carlo counters |
//! | POST | `/sweep` | JSON: grid spec + `.tpn` text | per-point throughput/utilisation rows |
//! | POST | `/optimize` | JSON: box spec + `.tpn` text | certified optimal parameter point |
//! | POST | `/whatif` | JSON: perturbation batch + `.tpn` text | incremental re-timed analyses |
//! | POST | `/v1` | JSON: `.tpn` text + many requests | one envelope, one shared session |
//! | GET | `/healthz` | — | graded liveness: `ok` \| `degraded` \| `unhealthy` (503) with burn-rate reasons |
//! | GET | `/stats` | — | cache/pool/sweep/optimize/whatif/artifact counters + process gauges |
//! | GET | `/metrics` | — | Prometheus text exposition (counters + latency histograms) |
//! | GET | `/metrics/history?window=W&step=S&series=A,B` | — | trailing-window rates and quantiles, columnar JSON |
//! | GET | `/slo` | — | objectives and current multi-window burn rates per endpoint |
//! | GET | `/alerts` | — | alert rule states, transition history and active silences, columnar JSON |
//! | POST | `/alerts/silence` | JSON: rule + TTL | create a TTL-bounded notification silence |
//! | GET | `/debug/requests?n=K` | — | the K most recent request traces, NDJSON (K capped at the ring size) |
//! | GET | `/debug/slow?n=K` | — | the K most recent objective-breaching traces, NDJSON (K capped at the ring size) |
//!
//! Status codes: 200 on success, 400 for malformed requests or `.tpn`
//! parse errors, 404/405 for bad routes, 413 for oversized bodies, 422
//! when the net parses but the analysis fails (or a what-if
//! perturbation leaves the lift's validity region). Legacy routes
//! render errors as `{"error": …}`; `/v1` and `/whatif` use the
//! structured `{"code": …, "message": …}` object — the full mapping
//! lives on [`ServiceError`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) use tpn_aio::http1::Request;
use tpn_aio::http1::{self, HttpError, HttpLimits};
use tpn_net::{parse_tpn, NetDigest, TimedPetriNet, TimingAssignment};
use tpn_obs::alert::AlertEngine;
use tpn_obs::log::RequestLog;
use tpn_obs::series::SeriesRing;
use tpn_session::{RetimeError, Session, SessionOptions, STAGES};

use crate::alerts::{self, AlertsConfig, Notifier, NotifyCounters, Silence};
use crate::analysis::{run_with_session, RequestKind, ServiceError};
use crate::cache::{AnalysisCache, CacheConfig, CacheKey};
use crate::executor::ThreadPool;
use crate::history;
use crate::json::{error_body, error_object, JsonWriter};
use crate::metrics::{
    self, ConnStats, Endpoint, RequestTrace, ServiceMetrics, SlowTrace, StatsSnapshot, ENDPOINTS,
};
use crate::sessions::SessionCache;
use crate::slo::{self, SloConfig};
use crate::spec::Spec;
use crate::v1::{parse_envelope, V1Request};
use crate::whatif::WhatifSpec;

/// Server and cache sizing.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads handling connections.
    pub threads: usize,
    /// Bounded queue of accepted-but-unhandled connections.
    pub queue_cap: usize,
    /// Result-cache sizing.
    pub cache: CacheConfig,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum `events` accepted by `/simulate` — one request may not
    /// pin a worker on an unbounded computation.
    pub max_sim_events: u64,
    /// Worker threads one `/sweep` evaluation fans out over (the grid
    /// is chunked across them; the output is identical at any count).
    pub sweep_threads: usize,
    /// Maximum grid points accepted by `/sweep` — the sweep analogue
    /// of `max_sim_events`.
    pub max_sweep_points: u64,
    /// Maximum [`Session`]s held in the artifact tier of the cache
    /// (one per distinct net digest, LRU-evicted).
    pub max_sessions: usize,
    /// Whether to record request metrics and traces (`/metrics`,
    /// `/debug/requests`). Off, the whole observability layer is a
    /// no-op — the comparison arm of the overhead bench.
    pub metrics: bool,
    /// Sampled NDJSON request logging (off when `None`). Requires
    /// `metrics` — the log is written by the same observation wrapper.
    pub log: Option<LogConfig>,
    /// Milliseconds between retention-ring samples taken by the
    /// sampler thread [`spawn`] runs (0 disables the thread; tests and
    /// benches drive [`Service::sample_now`] directly). Requires
    /// `metrics`.
    pub sample_interval_ms: u64,
    /// Retention-ring capacity in frames. At the 5s default interval
    /// the 720-frame default covers one trailing hour.
    pub history_frames: usize,
    /// SLO policy: objectives, burn windows and thresholds — drives
    /// the graded `/healthz`, `GET /slo`, and the slow-request
    /// watchdog.
    pub slo: SloConfig,
    /// Alerting policy: rules (merged onto defaults derived from
    /// `slo`), history sizing and the optional webhook sink — drives
    /// `GET /alerts` and the evaluator the sampler ticks. Requires
    /// `metrics`.
    pub alerts: AlertsConfig,
    /// Which listener [`spawn`] builds. The *library* default is
    /// [`IoMode::Threaded`] — its close-per-response framing is what
    /// EOF-reading clients (including this repo's test helpers)
    /// expect. `tpn serve` flips to [`IoMode::platform_default`],
    /// which picks epoll where supported.
    pub io: IoMode,
    /// Tuning for the epoll listener (ignored by the threaded one).
    pub aio: AioConfig,
}

/// Listener implementation selector — see [`ServiceConfig::io`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Blocking accept loop, one pool thread per in-flight
    /// connection, `Connection: close` after every response.
    Threaded,
    /// Edge-triggered epoll reactor: keep-alive, pipelining,
    /// admission control, streaming writes. Requires Linux and the
    /// `aio-epoll` feature; [`spawn`] errors otherwise.
    Epoll,
}

impl IoMode {
    /// True when [`IoMode::Epoll`] can actually serve on this build.
    pub fn epoll_supported() -> bool {
        cfg!(all(target_os = "linux", feature = "aio-epoll"))
    }

    /// The best mode for this platform: epoll where supported,
    /// threaded elsewhere.
    pub fn platform_default() -> IoMode {
        if IoMode::epoll_supported() {
            IoMode::Epoll
        } else {
            IoMode::Threaded
        }
    }
}

/// Epoll-listener tuning: admission control, deadlines, streaming.
#[derive(Debug, Clone)]
pub struct AioConfig {
    /// Hard cap on concurrently open connections; connections beyond
    /// it are answered `503` and closed immediately.
    pub max_connections: usize,
    /// Keep-alive bound: after this many responses on one connection
    /// the server sends `Connection: close` (0 acts as 1).
    pub max_requests_per_conn: u64,
    /// Deadline for reading one full request (first byte of the
    /// request line to last body byte) — the slow-loris bound.
    pub read_deadline_ms: u64,
    /// Stall deadline while writing a response: the timer re-arms on
    /// every write that makes progress, so a slow-but-moving client
    /// survives while a stalled one is cut.
    pub write_deadline_ms: u64,
    /// How long an idle keep-alive connection may sit between
    /// requests before the server closes it.
    pub idle_deadline_ms: u64,
    /// In-flight request budget: while this many requests sit between
    /// dispatch and response, the listener deregisters itself from
    /// the poller (accept-pause backpressure) instead of accepting
    /// work it cannot queue. `0` means "use `queue_cap`", which also
    /// guarantees the reactor never blocks on the pool's queue.
    pub inflight: usize,
    /// Response bodies strictly larger than this stream out with
    /// `Transfer-Encoding: chunked` through a bounded write buffer
    /// instead of being queued as one contiguous write.
    pub stream_threshold: usize,
    /// Chunk-frame payload size for streamed bodies — the bound on
    /// the per-connection write buffer.
    pub write_chunk: usize,
    /// Graceful-drain budget at shutdown: in-flight requests get this
    /// long to finish flushing before their connections are closed.
    pub drain_ms: u64,
}

impl Default for AioConfig {
    fn default() -> AioConfig {
        AioConfig {
            max_connections: 10_240,
            max_requests_per_conn: 1_000,
            read_deadline_ms: 30_000,
            write_deadline_ms: 10_000,
            idle_deadline_ms: 60_000,
            inflight: 0,
            stream_threshold: 64 * 1024,
            write_chunk: 32 * 1024,
            drain_ms: 5_000,
        }
    }
}

/// Request-log destination and sampling.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Append to this file; `None` writes to standard error.
    pub path: Option<String>,
    /// Write every `sample`-th record (1 = every record, 0 acts as 1).
    pub sample: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            threads: 4,
            queue_cap: 64,
            cache: CacheConfig::default(),
            max_body_bytes: 1 << 20,
            max_sim_events: 10_000_000,
            sweep_threads: 4,
            max_sweep_points: 1_000_000,
            max_sessions: 32,
            metrics: true,
            log: None,
            sample_interval_ms: 5_000,
            history_frames: 720,
            slo: SloConfig::default(),
            alerts: AlertsConfig::default(),
            io: IoMode::Threaded,
            aio: AioConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// The [`SessionOptions`] every session of this service obeys.
    pub fn session_options(&self) -> SessionOptions {
        SessionOptions::new()
            .threads(self.sweep_threads)
            .max_points(self.max_sweep_points)
    }
}

/// The analysis service: parse → digest → session → cached analysis.
/// Usable in-process (the CLI's `batch` mode) or behind [`spawn`]'s
/// HTTP front end.
///
/// The cache is two-tier: a per-digest [`Session`] tier holding the
/// memoized pipeline artifacts (TRG, decision graph, rates, lifted
/// domains, compiled programs) and the final-body
/// [`AnalysisCache`] tier keyed by `(digest, request kind)`. Requests
/// of *different* kinds against the same net miss the body tier but
/// share the artifact tier — that is where the redundant work used to
/// be.
pub struct Service {
    cache: AnalysisCache,
    sessions: SessionCache,
    config: ServiceConfig,
    requests: AtomicU64,
    v1_envelopes: AtomicU64,
    sweeps: AtomicU64,
    sweep_hits: AtomicU64,
    sweep_compiles: AtomicU64,
    sweep_points: AtomicU64,
    optimizes: AtomicU64,
    optimize_hits: AtomicU64,
    optimize_solves: AtomicU64,
    optimize_certified: AtomicU64,
    whatifs: AtomicU64,
    whatif_perturbations: AtomicU64,
    whatif_hits: AtomicU64,
    whatif_retimes: AtomicU64,
    whatif_rejects: AtomicU64,
    metrics: ServiceMetrics,
    log: Option<RequestLog>,
    started: Instant,
    /// Unix time the service was constructed, milliseconds — the
    /// `tpn_process_start_time_seconds` gauge and `/stats` restart
    /// detector.
    start_unix_ms: u64,
    /// The retention ring the sampler fills (capacity 1 with metrics
    /// disabled — nothing ever pushes).
    ring: SeriesRing,
    /// Per-endpoint watchdog thresholds, precomputed from the SLO
    /// objectives: a request slower than its endpoint's entry is
    /// captured into the slow ring.
    slow_threshold: [Option<u64>; ENDPOINTS.len()],
    /// The alert evaluator, ticked by the sampler against each pushed
    /// frame. The mutex serializes ticks with `/alerts` renders; both
    /// sides hold it only for in-memory work.
    alerts: Mutex<AlertEngine>,
    /// Active notification silences (expired entries pruned on write).
    silences: Mutex<Vec<Silence>>,
    /// Silence id allocator.
    silence_seq: AtomicU64,
    /// Webhook notification outcome counters (rendered in `/metrics`
    /// whether or not a notifier is configured).
    notify: Arc<NotifyCounters>,
    /// The webhook notifier worker, when configured.
    notifier: Option<Notifier>,
    /// Listener connection counters (open gauge, accept/reject/
    /// timeout/drain counters, lifetime histogram) — updated by
    /// whichever listener [`spawn`] built, rendered on `/stats` and
    /// `/metrics`.
    conn: ConnStats,
}

impl Service {
    /// A fresh service with an empty cache.
    pub fn new(config: ServiceConfig) -> Service {
        if config.metrics {
            // Pay the fast clock's one-time TSC calibration spin here,
            // not inside the first observed request.
            tpn_obs::clock::calibrate();
        }
        let metrics = ServiceMetrics::new(config.metrics);
        let log = if config.metrics {
            config.log.as_ref().and_then(|lc| match &lc.path {
                Some(path) => match RequestLog::file(path, lc.sample) {
                    Ok(log) => Some(log),
                    Err(e) => {
                        eprintln!("tpn: cannot open request log {path:?}: {e}");
                        None
                    }
                },
                None => Some(RequestLog::stderr(lc.sample)),
            })
        } else {
            None
        };
        let ring_frames = if config.metrics {
            config.history_frames.max(2)
        } else {
            1
        };
        let ring = SeriesRing::new(history::schema(), ring_frames);
        let slow_threshold =
            std::array::from_fn(|i| config.slo.objective_for(ENDPOINTS[i]).map(|o| o.latency_ns));
        let alerts = Mutex::new(config.alerts.engine(&config.slo));
        let notify = Arc::new(NotifyCounters::default());
        let notifier = if config.metrics {
            config
                .alerts
                .webhook
                .clone()
                .map(|hook| Notifier::spawn(hook, Arc::clone(&notify)))
        } else {
            None
        };
        Service {
            cache: AnalysisCache::new(&config.cache),
            sessions: SessionCache::new(config.max_sessions, config.session_options()),
            config,
            requests: AtomicU64::new(0),
            v1_envelopes: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
            sweep_hits: AtomicU64::new(0),
            sweep_compiles: AtomicU64::new(0),
            sweep_points: AtomicU64::new(0),
            optimizes: AtomicU64::new(0),
            optimize_hits: AtomicU64::new(0),
            optimize_solves: AtomicU64::new(0),
            optimize_certified: AtomicU64::new(0),
            whatifs: AtomicU64::new(0),
            whatif_perturbations: AtomicU64::new(0),
            whatif_hits: AtomicU64::new(0),
            whatif_retimes: AtomicU64::new(0),
            whatif_rejects: AtomicU64::new(0),
            metrics,
            log,
            started: Instant::now(),
            start_unix_ms: tpn_obs::unix_ms(),
            ring,
            slow_threshold,
            alerts,
            silences: Mutex::new(Vec::new()),
            silence_seq: AtomicU64::new(0),
            notify,
            notifier,
            conn: ConnStats::default(),
        }
    }

    /// The result cache (for inspection in tests and benches).
    pub fn cache(&self) -> &AnalysisCache {
        &self.cache
    }

    /// The session (artifact) tier of the cache.
    pub fn sessions(&self) -> &SessionCache {
        &self.sessions
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The request-metrics recorder (for inspection in tests/benches).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The listener connection counters — updated by whichever
    /// listener serves this instance, readable any time.
    pub fn connections(&self) -> &ConnStats {
        &self.conn
    }

    /// Observe one request: time it, count it under
    /// `(endpoint, status)`, collect its span trace into the debug
    /// ring, and write the sampled request log. With metrics disabled —
    /// or when a request surface is reached from inside an
    /// already-observed request (`/v1` sub-requests, `tpn batch`
    /// re-entry) — the wrapper is a pass-through: `trace::begin_rooted`
    /// returns `false` on a thread that is already collecting, which
    /// doubles as the nested-observation guard, so every request is
    /// counted exactly once.
    ///
    /// No root span is stored at all: the [`RequestTrace`] header
    /// (endpoint, status, duration) *is* the root measurement, taken
    /// with the two clock reads this wrapper needs anyway, and the
    /// renderers synthesize the root line from it. `begin_rooted` only
    /// reserves depth 1 so collected spans nest under it.
    fn observed(
        &self,
        endpoint: Endpoint,
        f: impl FnOnce() -> (u16, Arc<String>),
    ) -> (u16, Arc<String>) {
        if !self.metrics.enabled() {
            return f();
        }
        let start_ns = tpn_obs::clock::now_ns();
        if !tpn_obs::trace::begin_rooted(start_ns) {
            return f();
        }
        let (status, body) = f();
        let end_ns = tpn_obs::clock::now_ns();
        let duration_ns = end_ns.saturating_sub(start_ns);
        self.metrics.record(endpoint, status, duration_ns);
        tpn_obs::trace::end_with(|spans, annotations| {
            let header = RequestTrace {
                endpoint: endpoint.name(),
                status,
                end_ns,
                duration_ns,
                digest: annotations[metrics::ANNOTATE_DIGEST],
                spec: annotations[metrics::ANNOTATE_SPEC],
                spans: Vec::new(),
            };
            // The slow-request watchdog: a request past its endpoint's
            // SLO latency objective has its full trace captured into
            // the dedicated slow ring, evidence-first — the general
            // ring may rotate it out long before anyone looks.
            if let Some(threshold_ns) = self.slow_threshold[endpoint.index()] {
                if duration_ns > threshold_ns {
                    self.metrics.push_slow(SlowTrace {
                        trace: RequestTrace {
                            spans: spans.to_vec(),
                            ..header.clone()
                        },
                        threshold_ns,
                    });
                }
            }
            self.metrics.push_trace_copying(header, spans);
        });
        if let Some(log) = &self.log {
            log.record(endpoint.name(), status, duration_ns, body.len());
        }
        (status, body)
    }

    /// Parse a `.tpn` body and resolve its shared [`Session`].
    fn parse_session(&self, body: &str) -> Result<Arc<Session>, ServiceError> {
        let net = {
            // The parse is the first work of every request that gets
            // here, so the span opens at the collection epoch without
            // paying a clock read.
            let _span = tpn_obs::trace::span_epoch("parse");
            parse_tpn(body).map_err(|e| ServiceError::Parse(e.to_string()))?
        };
        Ok(self.session_for(net))
    }

    /// The shared [`Session`] for an already-parsed net — the public
    /// entry point for in-process consumers (`tpn batch` parses each
    /// file once and runs every requested kind against this handle).
    pub fn session_for(&self, net: TimedPetriNet) -> Arc<Session> {
        let digest = net.digest();
        metrics::annotate_digest(digest.0);
        self.sessions.session_for(digest, net)
    }

    /// Serve one analysis request: parse the `.tpn` body, digest it,
    /// and answer from the content-addressed cache (computing at most
    /// once per digest across concurrent callers). Returns the HTTP
    /// status and the JSON body — shared, not copied: cache hits hand
    /// out the cached `Arc` so the hot path never clones the body.
    pub fn respond(&self, kind: RequestKind, body: &str) -> (u16, Arc<String>) {
        self.observed(Endpoint::of_kind(kind), || {
            self.requests.fetch_add(1, Ordering::Relaxed);
            legacy_reply(
                self.parse_session(body)
                    .and_then(|session| self.analysis_cached(&session, kind)),
            )
        })
    }

    /// Serve several analysis kinds for one `.tpn` body, parsing it
    /// **once** and running every kind against the same shared session
    /// — `tpn batch`'s entry point. Returns one `(status, body)` per
    /// requested kind, in order; a parse failure yields the same 400
    /// body for every kind (exactly what per-kind [`Service::respond`]
    /// calls would have produced).
    pub fn respond_many(&self, kinds: &[RequestKind], body: &str) -> Vec<(u16, Arc<String>)> {
        self.requests
            .fetch_add(kinds.len() as u64, Ordering::Relaxed);
        match self.parse_session(body) {
            Ok(session) => kinds
                .iter()
                .map(|&kind| {
                    self.observed(Endpoint::of_kind(kind), || {
                        legacy_reply(self.analysis_cached(&session, kind))
                    })
                })
                .collect(),
            Err(e) => {
                let reply = legacy_reply(Err(e));
                kinds
                    .iter()
                    .map(|&kind| self.observed(Endpoint::of_kind(kind), || reply.clone()))
                    .collect()
            }
        }
    }

    /// The cached execution of one plain analysis against a session —
    /// shared by the legacy routes, `tpn batch`, `/v1` and `/whatif`
    /// (each surface renders errors in its own shape).
    fn analysis_cached(
        &self,
        session: &Session,
        kind: RequestKind,
    ) -> Result<Arc<String>, ServiceError> {
        let key = CacheKey {
            digest: session.net().digest(),
            kind,
        };
        self.cache
            .get_or_compute(key, || run_with_session(session, kind))
    }

    /// Serve one parameter-sweep request. `body` is the spec object of
    /// [`crate::sweep`] plus a `"net"` member with the `.tpn` text.
    /// Results are cached under `(net digest, spec hash)` — a repeated
    /// sweep of the same net and grid is answered from the cache, and
    /// concurrent identical sweeps coalesce into one evaluation.
    pub fn respond_sweep(&self, body: &str) -> (u16, Arc<String>) {
        use crate::sweep::SweepSpec;

        self.observed(Endpoint::Sweep, || {
            self.requests.fetch_add(1, Ordering::Relaxed);
            self.sweeps.fetch_add(1, Ordering::Relaxed);
            legacy_reply(
                parse_spec_body(body, SweepSpec::from_json)
                    .and_then(|(net, spec)| self.sweep_cached(&self.session_for(net), &spec)),
            )
        })
    }

    /// The cached execution of one sweep against a session — shared by
    /// `POST /sweep` and `/v1`.
    fn sweep_cached(
        &self,
        session: &Session,
        spec: &crate::sweep::SweepSpec,
    ) -> Result<Arc<String>, ServiceError> {
        use crate::sweep::sweep_json;
        use std::sync::atomic::AtomicBool;

        let spec_hash = spec.hash();
        metrics::annotate_spec(spec_hash);
        let key = CacheKey {
            digest: session.net().digest(),
            kind: RequestKind::Sweep { spec: spec_hash },
        };
        let computed = AtomicBool::new(false);
        let result = self.cache.get_or_compute(key, || {
            computed.store(true, Ordering::Relaxed);
            let (body, points) = sweep_json(session, spec)?;
            self.sweep_compiles.fetch_add(1, Ordering::Relaxed);
            self.sweep_points.fetch_add(points, Ordering::Relaxed);
            Ok(body)
        });
        if result.is_ok() && !computed.load(Ordering::Relaxed) {
            // Served from the cache or coalesced onto a concurrent
            // identical evaluation — either way, no evaluation ran for
            // this request. Errors are deliberately not counted: a
            // follower coalesced onto a failing leader got a 4xx, not a
            // hit.
            self.sweep_hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Serve one parameter-synthesis request. `body` is the spec object
    /// of [`crate::optimize`] plus a `"net"` member with the `.tpn`
    /// text. Results are cached under `(net digest, spec hash)`; a
    /// repeated request is answered from the cache and concurrent
    /// identical requests coalesce into one solve.
    pub fn respond_optimize(&self, body: &str) -> (u16, Arc<String>) {
        use crate::optimize::OptimizeSpec;

        self.observed(Endpoint::Optimize, || {
            self.requests.fetch_add(1, Ordering::Relaxed);
            self.optimizes.fetch_add(1, Ordering::Relaxed);
            legacy_reply(
                parse_spec_body(body, OptimizeSpec::from_json)
                    .and_then(|(net, spec)| self.optimize_cached(&self.session_for(net), &spec)),
            )
        })
    }

    /// The cached execution of one optimize against a session — shared
    /// by `POST /optimize` and `/v1`.
    fn optimize_cached(
        &self,
        session: &Session,
        spec: &crate::optimize::OptimizeSpec,
    ) -> Result<Arc<String>, ServiceError> {
        use crate::optimize::optimize_json;

        let spec_hash = spec.hash();
        metrics::annotate_spec(spec_hash);
        let key = CacheKey {
            digest: session.net().digest(),
            kind: RequestKind::Optimize { spec: spec_hash },
        };
        let computed = AtomicBool::new(false);
        let result = self.cache.get_or_compute(key, || {
            computed.store(true, Ordering::Relaxed);
            let (body, certified) = optimize_json(session, spec)?;
            self.optimize_solves.fetch_add(1, Ordering::Relaxed);
            if certified {
                self.optimize_certified.fetch_add(1, Ordering::Relaxed);
            }
            Ok(body)
        });
        if result.is_ok() && !computed.load(Ordering::Relaxed) {
            // See sweep_cached: cache hit or successful coalescing,
            // never an error follower.
            self.optimize_hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Serve one what-if batch. `body` is the spec object of
    /// [`crate::whatif`] plus a `"net"` member with the `.tpn` text.
    /// Unlike the legacy routes, errors render as the structured
    /// `{"code": …, "message": …}` object.
    pub fn respond_whatif(&self, body: &str) -> (u16, Arc<String>) {
        self.observed(Endpoint::Whatif, || {
            self.requests.fetch_add(1, Ordering::Relaxed);
            self.whatifs.fetch_add(1, Ordering::Relaxed);
            match parse_spec_body(body, WhatifSpec::from_json) {
                Ok((net, spec)) => (200, self.whatif_cached(&self.session_for(net), &spec)),
                Err(e) => (e.status(), Arc::new(error_object(e.code(), e.message()))),
            }
        })
    }

    /// Serve one what-if batch for an already-parsed net and spec — the
    /// in-process entry point `tpn whatif` uses, so the CLI's output is
    /// byte-identical to the HTTP endpoint's.
    pub fn respond_whatif_spec(&self, net: TimedPetriNet, spec: &WhatifSpec) -> Arc<String> {
        let (_, body) = self.observed(Endpoint::Whatif, || {
            self.requests.fetch_add(1, Ordering::Relaxed);
            self.whatifs.fetch_add(1, Ordering::Relaxed);
            (200, self.whatif_cached(&self.session_for(net), spec))
        });
        body
    }

    /// Assemble one what-if envelope. The envelope is always a 200 once
    /// the net and spec parse: each perturbation succeeds or fails alone
    /// in its own entry. Successful entries are cached under
    /// `(structural digest, timing hash, requests hash)` — shared
    /// across batches whose perturbations merge to the same timing
    /// point — while the perturbation echo is written outside the
    /// cached fragment (two different deltas may land on one point).
    fn whatif_cached(&self, session: &Session, spec: &WhatifSpec) -> Arc<String> {
        let base = session.net();
        let structural = base.structural_digest();
        let requests_hash = crate::spec::spec_hash(&spec.requests_canonical());
        metrics::annotate_spec(requests_hash);
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("kind");
        w.string("whatif");
        w.key("net");
        w.string(base.name());
        w.key("structural_digest");
        w.string(&structural.to_hex());
        w.key("base_digest");
        w.string(&base.digest().to_hex());
        w.key("requests");
        w.begin_array();
        for r in &spec.requests {
            w.string(r.name());
        }
        w.end_array();
        w.key("perturbations");
        w.begin_array();
        for delta in &spec.perturbations {
            self.whatif_perturbations.fetch_add(1, Ordering::Relaxed);
            w.begin_object();
            w.key("perturbation");
            w.begin_object();
            for (attr, value) in delta.iter() {
                w.key(attr);
                w.rational(value);
            }
            w.end_object();
            match self.whatif_entry(session, spec, structural, requests_hash, delta) {
                Ok(body) => {
                    w.key("status");
                    w.uint(200);
                    w.key("body");
                    w.raw(&body);
                }
                Err(e) => {
                    self.whatif_rejects.fetch_add(1, Ordering::Relaxed);
                    w.key("status");
                    w.uint(u64::from(e.status()));
                    w.key("error");
                    w.raw(&error_object(e.code(), e.message()));
                }
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        Arc::new(w.finish())
    }

    /// One perturbation's cached entry body: re-time the base session
    /// through its memoized lift, run every requested analysis against
    /// the re-timed session, and cache the assembled fragment. The
    /// re-timed session itself is inserted into the session tier under
    /// the **perturbed** net's full digest, and each inner analysis body
    /// is cached under `(full digest, kind)` — exactly the lines a
    /// plain request for that net would hit.
    fn whatif_entry(
        &self,
        session: &Session,
        spec: &WhatifSpec,
        structural: NetDigest,
        requests_hash: u128,
        delta: &TimingAssignment,
    ) -> Result<Arc<String>, ServiceError> {
        let timing = session.net().timing().merged(delta).hash();
        let key = CacheKey {
            digest: structural,
            kind: RequestKind::Whatif {
                timing,
                spec: requests_hash,
            },
        };
        let computed = AtomicBool::new(false);
        let result = self.cache.get_or_compute(key, || {
            computed.store(true, Ordering::Relaxed);
            // Validate the delta against the base net first: an unknown
            // attribute or a negative value is a 400 before any
            // substitution runs.
            let perturbed = session
                .net()
                .with_timing(delta)
                .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
            let digest = perturbed.digest();
            let retimed = self.sessions.session_or_else(digest, || {
                let retimed = session.retimed(delta).map_err(|e| match e {
                    RetimeError::Invalid(m) => ServiceError::BadRequest(m),
                    RetimeError::OutOfRegion(m) => ServiceError::OutOfRegion(m),
                    RetimeError::Pipeline(e) => ServiceError::Analysis(e.to_string()),
                })?;
                self.whatif_retimes.fetch_add(1, Ordering::Relaxed);
                Ok::<_, ServiceError>(retimed)
            })?;
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("digest");
            w.string(&digest.to_hex());
            w.key("timing");
            w.string(&format!("{timing:032x}"));
            w.key("results");
            w.begin_array();
            for &kind in &spec.requests {
                let body = self.analysis_cached(&retimed, kind)?;
                w.begin_object();
                w.key("kind");
                w.string(kind.name());
                w.key("status");
                w.uint(200);
                w.key("body");
                w.raw(&body);
                w.end_object();
            }
            w.end_array();
            w.end_object();
            Ok(w.finish())
        });
        if result.is_ok() && !computed.load(Ordering::Relaxed) {
            // See sweep_cached: cache hit or successful coalescing,
            // never an error follower.
            self.whatif_hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Serve one `/v1` envelope: one net, many analyses, one shared
    /// session. Each sub-request goes through the same cached paths as
    /// its legacy endpoint (same `(digest, kind)` keys, same success
    /// bodies, same sweep/optimize/whatif counters); the envelope
    /// itself is assembled fresh — it is pure concatenation. Errors —
    /// the envelope's own and each entry's — render as the structured
    /// `{"code": …, "message": …}` object.
    pub fn respond_v1(&self, body: &str) -> (u16, Arc<String>) {
        self.observed(Endpoint::V1, || self.v1_reply(body))
    }

    /// The `/v1` body assembly behind [`Service::respond_v1`]'s
    /// observation wrapper. With the envelope's `"trace"` flag set, the
    /// response carries the spans collected *so far* for this request
    /// (every sub-request's pipeline work; the final render necessarily
    /// falls outside its own recording).
    fn v1_reply(&self, body: &str) -> (u16, Arc<String>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.v1_envelopes.fetch_add(1, Ordering::Relaxed);
        let fail = |e: ServiceError| (e.status(), Arc::new(error_object(e.code(), e.message())));
        let (net_text, requests, trace) = {
            let _span = tpn_obs::trace::span("parse");
            match parse_envelope(body, self.config.max_sim_events) {
                Ok(parsed) => parsed,
                Err(e) => return fail(e),
            }
        };
        // `requests` counts *analyses served*, not HTTP round trips: an
        // envelope of N sub-requests reports like N legacy calls would
        // (the entry tick above covered the first; a malformed envelope
        // stays a single request).
        self.requests
            .fetch_add(requests.len() as u64 - 1, Ordering::Relaxed);
        let net = {
            let _span = tpn_obs::trace::span("parse");
            match parse_tpn(&net_text) {
                Ok(net) => net,
                Err(e) => return fail(ServiceError::Parse(e.to_string())),
            }
        };
        let session = self.session_for(net);
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("kind");
        w.string("v1");
        w.key("net");
        w.string(session.net().name());
        w.key("digest");
        w.string(&session.net().digest().to_hex());
        w.key("results");
        w.begin_array();
        for request in &requests {
            let result = match request {
                V1Request::Analysis(kind) => self.analysis_cached(&session, *kind),
                V1Request::Sweep(spec) => {
                    self.sweeps.fetch_add(1, Ordering::Relaxed);
                    self.sweep_cached(&session, spec)
                }
                V1Request::Optimize(spec) => {
                    self.optimizes.fetch_add(1, Ordering::Relaxed);
                    self.optimize_cached(&session, spec)
                }
                V1Request::Whatif(spec) => {
                    self.whatifs.fetch_add(1, Ordering::Relaxed);
                    Ok(self.whatif_cached(&session, spec))
                }
            };
            let (status, rendered) = match result {
                Ok(body) => (200, body),
                Err(e) => (e.status(), Arc::new(error_object(e.code(), e.message()))),
            };
            w.begin_object();
            w.key("kind");
            w.string(request.kind_name());
            w.key("status");
            w.uint(u64::from(status));
            w.key("body");
            w.raw(&rendered);
            w.end_object();
        }
        w.end_array();
        if trace {
            w.key("trace");
            metrics::write_spans(&mut w, &tpn_obs::trace::snapshot());
        }
        w.end_object();
        (200, Arc::new(w.finish()))
    }

    /// The `/stats` document: request/cache counters plus pool sizing.
    pub fn stats_json(&self) -> String {
        let s = self.cache.stats();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("requests");
        w.uint(self.requests.load(Ordering::Relaxed));
        w.key("computations");
        w.uint(s.computations);
        w.key("hits");
        w.uint(s.hits);
        w.key("misses");
        w.uint(s.misses);
        w.key("coalesced");
        w.uint(s.coalesced);
        w.key("evictions");
        w.uint(s.evictions);
        w.key("entries");
        w.uint(s.entries as u64);
        w.key("bytes");
        w.uint(s.bytes as u64);
        w.key("sweeps");
        w.uint(self.sweeps.load(Ordering::Relaxed));
        w.key("sweep_hits");
        w.uint(self.sweep_hits.load(Ordering::Relaxed));
        w.key("sweep_compiles");
        w.uint(self.sweep_compiles.load(Ordering::Relaxed));
        w.key("sweep_points");
        w.uint(self.sweep_points.load(Ordering::Relaxed));
        w.key("optimizes");
        w.uint(self.optimizes.load(Ordering::Relaxed));
        w.key("optimize_hits");
        w.uint(self.optimize_hits.load(Ordering::Relaxed));
        w.key("optimize_solves");
        w.uint(self.optimize_solves.load(Ordering::Relaxed));
        w.key("optimize_certified");
        w.uint(self.optimize_certified.load(Ordering::Relaxed));
        w.key("whatifs");
        w.uint(self.whatifs.load(Ordering::Relaxed));
        w.key("whatif_perturbations");
        w.uint(self.whatif_perturbations.load(Ordering::Relaxed));
        w.key("whatif_hits");
        w.uint(self.whatif_hits.load(Ordering::Relaxed));
        w.key("whatif_retimes");
        w.uint(self.whatif_retimes.load(Ordering::Relaxed));
        w.key("whatif_rejects");
        w.uint(self.whatif_rejects.load(Ordering::Relaxed));
        w.key("v1_envelopes");
        w.uint(self.v1_envelopes.load(Ordering::Relaxed));
        // The session (artifact) tier: how many sessions are live and
        // how often requests found one.
        let sess = self.sessions.stats();
        w.key("sessions");
        w.begin_object();
        w.key("entries");
        w.uint(sess.sessions as u64);
        w.key("hits");
        w.uint(sess.hits);
        w.key("misses");
        w.uint(sess.misses);
        w.key("evictions");
        w.uint(sess.evictions);
        w.end_object();
        // Per-stage artifact counters, aggregated over every session
        // this service created — the observable form of "a /sweep after
        // an /analyze reuses the TRG".
        let counters = self.sessions.counters();
        w.key("artifacts");
        w.begin_object();
        for stage in STAGES {
            let snap = counters.snapshot(stage);
            w.key(stage.name());
            w.begin_object();
            w.key("artifact_hits");
            w.uint(snap.hits);
            w.key("artifact_misses");
            w.uint(snap.misses);
            w.key("artifact_builds");
            w.uint(snap.builds);
            w.end_object();
        }
        w.end_object();
        w.key("threads");
        w.uint(self.config.threads as u64);
        w.key("queue_cap");
        w.uint(self.config.queue_cap as u64);
        // Process identity and resource gauges, appended last so the
        // document stays a byte-stable extension of its pre-retention
        // shape (the golden-capture test compares the prefix).
        let proc = tpn_obs::procinfo::sample();
        w.key("process");
        w.begin_object();
        w.key("version");
        w.string(env!("CARGO_PKG_VERSION"));
        w.key("start_time_ms");
        w.uint(self.start_unix_ms);
        w.key("uptime_seconds");
        w.float(self.started.elapsed().as_secs_f64());
        w.key("rss_bytes");
        w.uint(proc.rss_bytes);
        w.key("open_fds");
        w.uint(proc.open_fds);
        w.key("os_threads");
        w.uint(proc.threads);
        w.end_object();
        // Listener connection counters, appended after `process` so
        // the document stays a byte-stable extension (the golden
        // prefix *and* the `,"process":{"version":…` tail anchor both
        // survive).
        let conn = self.conn.scalars();
        w.key("connections");
        w.begin_object();
        w.key("open");
        w.uint(conn.open);
        w.key("accepted");
        w.uint(conn.accepted);
        w.key("rejected");
        w.uint(conn.rejected);
        w.key("timeouts");
        w.uint(conn.timeouts);
        w.key("drained");
        w.uint(conn.drained);
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// The liveness body `/healthz` serves while every objective is
    /// within budget (kept byte-stable for probes that compare it).
    pub fn health_json() -> String {
        r#"{"status":"ok"}"#.to_string()
    }

    /// The graded `/healthz` reply: `(200, ok)` with SLOs in budget
    /// (or metrics disabled — no data, no judgment), `(200, degraded)`
    /// when a burn threshold is crossed, `(503, unhealthy)` when fast
    /// and slow windows both burn past the page threshold.
    pub fn healthz(&self) -> (u16, String) {
        if !self.metrics.enabled() {
            return (200, Service::health_json());
        }
        let now = self.current_frame();
        let status = slo::evaluate(&self.config.slo, &self.ring, &now);
        slo::healthz_json(&status)
    }

    /// The `GET /slo` document: policy, objectives and current
    /// windowed burn rates per endpoint.
    pub fn slo_text(&self) -> String {
        let now = self.current_frame();
        let status = slo::evaluate(&self.config.slo, &self.ring, &now);
        slo::slo_json(&self.config.slo, &status)
    }

    /// The `GET /metrics/history` document for a trailing window,
    /// decimated to `step` seconds per interval; `series` is the
    /// optional comma-separated leaf-column filter.
    pub fn history_text(
        &self,
        window_s: u64,
        step_s: u64,
        series: Option<&str>,
    ) -> Result<String, ServiceError> {
        let filter = history::SeriesFilter::parse(series)?;
        history::history_json(&self.ring, tpn_obs::unix_ms(), window_s, step_s, &filter)
    }

    /// The `GET /alerts` document: rule states, transition history and
    /// active silences.
    pub fn alerts_text(&self) -> String {
        let engine = self.alerts.lock().expect("alert engine lock");
        let silences = self.silences.lock().expect("silence lock");
        alerts::alerts_json(&engine, &silences)
    }

    /// Serve one `POST /alerts/silence` body: validate the rule name
    /// and TTL, prune expired silences, and register a new one.
    pub fn respond_silence(&self, body: &str) -> (u16, String) {
        let parsed = {
            let engine = self.alerts.lock().expect("alert engine lock");
            alerts::parse_silence(body, engine.rules())
        };
        let (rule, ttl_s, comment) = match parsed {
            Ok(parsed) => parsed,
            Err(m) => return (400, error_body(&m)),
        };
        let now = tpn_obs::unix_ms();
        let until_ms = now + ttl_s * 1_000;
        let id = self.silence_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut silences = self.silences.lock().expect("silence lock");
        silences.retain(|s| s.until_ms > now);
        silences.push(Silence {
            id,
            rule: rule.clone(),
            until_ms,
            comment,
        });
        drop(silences);
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("id");
        w.uint(id);
        w.key("rule");
        w.string(&rule);
        w.key("until_ms");
        w.uint(until_ms);
        w.end_object();
        (200, w.finish())
    }

    /// A frame of the live counters, as the sampler would push it.
    fn current_frame(&self) -> tpn_obs::series::Frame {
        history::collect_frame(&self.metrics, &self.stats_snapshot(), tpn_obs::unix_ms())
    }

    /// Push one retention-ring frame now and tick the alert evaluator
    /// against it — the sampler thread's tick, also driven directly by
    /// tests and benches for deterministic timelines. No-op with
    /// metrics disabled. Notification lines for unsilenced transitions
    /// are enqueued to the webhook notifier, which never blocks here:
    /// its queue push is bounded and its I/O lives on its own thread.
    pub fn sample_now(&self) {
        if !self.metrics.enabled() {
            return;
        }
        let frame = self.current_frame();
        self.ring.push(&frame);
        let mut engine = self.alerts.lock().expect("alert engine lock");
        let events = engine.tick(&self.ring, &frame);
        if events.is_empty() {
            return;
        }
        let lines: Vec<String> = {
            let silences = self.silences.lock().expect("silence lock");
            events
                .iter()
                .filter(|e| {
                    let rule = &engine.rules()[e.rule];
                    !alerts::is_silenced(&silences, &rule.name, frame.unix_ms)
                })
                .map(|e| alerts::notification_line(&engine.rules()[e.rule], e))
                .collect()
        };
        drop(engine);
        if let Some(notifier) = &self.notifier {
            for line in lines {
                notifier.enqueue(line);
            }
        }
    }

    /// The retention ring (for inspection in tests/benches).
    pub fn series(&self) -> &SeriesRing {
        &self.ring
    }

    /// Every `/stats` number, snapshotted for rendering.
    fn stats_snapshot(&self) -> StatsSnapshot {
        let s = self.cache.stats();
        let sess = self.sessions.stats();
        let (alerts_firing, alerts_pending) = {
            let engine = self.alerts.lock().expect("alert engine lock");
            (engine.firing_count(), engine.pending_count())
        };
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            computations: s.computations,
            hits: s.hits,
            misses: s.misses,
            coalesced: s.coalesced,
            evictions: s.evictions,
            entries: s.entries as u64,
            bytes: s.bytes as u64,
            sweeps: self.sweeps.load(Ordering::Relaxed),
            sweep_hits: self.sweep_hits.load(Ordering::Relaxed),
            sweep_compiles: self.sweep_compiles.load(Ordering::Relaxed),
            sweep_points: self.sweep_points.load(Ordering::Relaxed),
            optimizes: self.optimizes.load(Ordering::Relaxed),
            optimize_hits: self.optimize_hits.load(Ordering::Relaxed),
            optimize_solves: self.optimize_solves.load(Ordering::Relaxed),
            optimize_certified: self.optimize_certified.load(Ordering::Relaxed),
            whatifs: self.whatifs.load(Ordering::Relaxed),
            whatif_perturbations: self.whatif_perturbations.load(Ordering::Relaxed),
            whatif_hits: self.whatif_hits.load(Ordering::Relaxed),
            whatif_retimes: self.whatif_retimes.load(Ordering::Relaxed),
            whatif_rejects: self.whatif_rejects.load(Ordering::Relaxed),
            v1_envelopes: self.v1_envelopes.load(Ordering::Relaxed),
            session_entries: sess.sessions as u64,
            session_hits: sess.hits,
            session_misses: sess.misses,
            session_evictions: sess.evictions,
            threads: self.config.threads as u64,
            queue_cap: self.config.queue_cap as u64,
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            start_time_seconds: self.start_unix_ms as f64 / 1_000.0,
            alerts_firing,
            alerts_pending,
            notifications_sent: self.notify.sent.load(Ordering::Relaxed),
            notifications_dropped: self.notify.dropped.load(Ordering::Relaxed),
            notifications_failed: self.notify.failed.load(Ordering::Relaxed),
        }
    }

    /// The `/metrics` document: Prometheus text exposition covering
    /// every `/stats` counter plus the request/stage latency
    /// histograms. Available even with metrics recording disabled (the
    /// request families are simply empty).
    pub fn metrics_text(&self) -> String {
        metrics::render(
            &self.metrics,
            &self.stats_snapshot(),
            self.sessions.counters(),
            &self.conn,
        )
    }

    /// The `/debug/requests` document: the `n` most recent completed
    /// request traces, most recent first, one JSON object per line.
    pub fn debug_requests_text(&self, n: usize) -> String {
        metrics::debug_requests_ndjson(&self.metrics.recent_traces(n))
    }

    /// The `/debug/slow` document: the `n` most recent watchdog
    /// captures (requests that breached their latency objective),
    /// most recent first, one JSON object per line.
    pub fn debug_slow_text(&self, n: usize) -> String {
        metrics::debug_slow_ndjson(&self.metrics.recent_slow(n))
    }
}

/// Render a result in the legacy routes' reply shape: 200 with the body
/// on success, `{"error": "<prefix>: <message>"}` with the mapped
/// status on failure.
fn legacy_reply(result: Result<Arc<String>, ServiceError>) -> (u16, Arc<String>) {
    match result {
        Ok(body) => (200, body),
        Err(e) => (e.status(), Arc::new(error_body(&e.to_string()))),
    }
}

/// Parse a spec-carrying request body: a JSON object whose `"net"`
/// member holds the `.tpn` text and whose remaining members form the
/// spec — the common shape of `/sweep`, `/optimize` and `/whatif`.
fn parse_spec_body<S>(
    body: &str,
    from_json: impl FnOnce(&crate::jsonval::Json) -> Result<S, ServiceError>,
) -> Result<(TimedPetriNet, S), ServiceError> {
    let _span = tpn_obs::trace::span("parse");
    let doc = crate::jsonval::Json::parse(body)
        .map_err(|e| ServiceError::BadRequest(format!("request body: {e}")))?;
    let net_text = doc
        .get("net")
        .and_then(crate::jsonval::Json::as_str)
        .ok_or_else(|| {
            ServiceError::BadRequest(
                "request body needs a \"net\" member with the .tpn text".to_string(),
            )
        })?;
    let net = parse_tpn(net_text).map_err(|e| ServiceError::Parse(e.to_string()))?;
    let spec = from_json(&doc)?;
    Ok((net, spec))
}

/// A running HTTP server. Dropping the handle shuts the server down;
/// [`ServerHandle::wait`] blocks forever (the `tpn serve` foreground
/// mode).
pub struct ServerHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) accept_thread: Option<JoinHandle<()>>,
    pub(crate) sampler_thread: Option<JoinHandle<()>>,
    /// Set by the epoll listener: stopping wakes the reactor's
    /// `epoll_wait` directly instead of dialing the listener.
    #[cfg(all(target_os = "linux", feature = "aio-epoll"))]
    pub(crate) waker: Option<tpn_aio::wake::Waker>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight connections, join the threads.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    /// Block until the server exits (it only exits via shutdown, so
    /// this parks the caller for the server's lifetime).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn stop_now(&mut self) {
        if let Some(t) = self.sampler_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = t.join();
        }
        if let Some(t) = self.accept_thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            #[cfg(all(target_os = "linux", feature = "aio-epoll"))]
            if let Some(waker) = &self.waker {
                waker.wake();
                let _ = t.join();
                return;
            }
            // Unblock the blocking accept() with a no-op connection.
            // A wildcard bind (0.0.0.0/[::]) is not connectable on
            // every platform — dial loopback on the bound port instead.
            let mut wake = self.addr;
            if wake.ip().is_unspecified() {
                wake.set_ip(match wake {
                    SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            // Retry briefly: under fd exhaustion the first connects can
            // fail while the accept loop is backing off on errors.
            for _ in 0..50 {
                if TcpStream::connect(wake).is_ok() || t.is_finished() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_now();
    }
}

/// Bind `addr` and serve `service` until the handle is shut down,
/// with the listener [`ServiceConfig::io`] selects. Asking for
/// [`IoMode::Epoll`] on a build without it is an error — callers that
/// want "epoll where possible" use [`IoMode::platform_default`].
pub fn spawn(service: Arc<Service>, addr: &str) -> std::io::Result<ServerHandle> {
    match service.config.io {
        IoMode::Threaded => spawn_threaded(service, addr),
        IoMode::Epoll => {
            #[cfg(all(target_os = "linux", feature = "aio-epoll"))]
            {
                crate::aio_server::spawn_epoll(service, addr)
            }
            #[cfg(not(all(target_os = "linux", feature = "aio-epoll")))]
            {
                let _ = &service;
                Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "epoll I/O is not available on this platform/build; \
                     use IoMode::Threaded or IoMode::platform_default()",
                ))
            }
        }
    }
}

/// The retention sampler: one frame every `sample_interval_ms`,
/// sleeping in short slices so shutdown is prompt. Shared by both
/// listeners.
pub(crate) fn spawn_sampler(
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<Option<JoinHandle<()>>> {
    if service.metrics.enabled() && service.config.sample_interval_ms > 0 {
        let service = Arc::clone(service);
        let stop = Arc::clone(stop);
        let interval = Duration::from_millis(service.config.sample_interval_ms);
        Ok(Some(
            std::thread::Builder::new()
                .name("tpn-sampler".to_string())
                .spawn(move || {
                    service.sample_now();
                    let slice = Duration::from_millis(50).min(interval);
                    let mut next = Instant::now() + interval;
                    while !stop.load(Ordering::SeqCst) {
                        if Instant::now() >= next {
                            service.sample_now();
                            next += interval;
                        }
                        std::thread::sleep(slice);
                    }
                })?,
        ))
    } else {
        Ok(None)
    }
}

/// The threaded listener: blocking accept loop, one pool thread per
/// in-flight connection, one request per connection. Kept as the
/// portable fallback and as the differential oracle the epoll
/// listener is tested against.
pub(crate) fn spawn_threaded(service: Arc<Service>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let sampler_thread = spawn_sampler(&service, &stop)?;
    let accept_thread = std::thread::Builder::new()
        .name("tpn-accept".to_string())
        .spawn(move || {
            // The pool lives (and dies, draining its queue) with the
            // accept loop.
            let pool = ThreadPool::new(service.config.threads, service.config.queue_cap);
            loop {
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => {
                        // Transient failures (e.g. EMFILE under fd
                        // exhaustion) return immediately: back off so
                        // the loop cannot pin a core, and honour the
                        // stop flag here too — under exhaustion the
                        // shutdown wake-up connection itself may fail.
                        if stop2.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                };
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let svc = Arc::clone(&service);
                service.conn.opened();
                let opened = Instant::now();
                if pool
                    .execute(move || {
                        handle_connection(&svc, stream);
                        svc.conn.closed(opened.elapsed().as_nanos() as u64);
                    })
                    .is_err()
                {
                    // Pool shut down before the job was queued: the
                    // connection is dropped unserved — balance the
                    // open gauge here.
                    service.conn.closed(opened.elapsed().as_nanos() as u64);
                    break;
                }
            }
        })?;
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        sampler_thread,
        #[cfg(all(target_os = "linux", feature = "aio-epoll"))]
        waker: None,
    })
}

pub(crate) enum ReadError {
    /// Protocol violation worth a 400.
    Malformed(String),
    /// Body larger than the configured cap: 413.
    TooLarge,
    /// A protocol feature this server does not implement: 501.
    Unsupported(String),
    /// Transport failure; nothing sensible to reply.
    Io,
}

pub(crate) const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Overall per-request read deadline. The socket read timeout only
/// bounds *each* read; this bounds the total, so a slow-drip client
/// (one byte per read-timeout window) cannot hold a worker past it.
const READ_DEADLINE: Duration = Duration::from_secs(30);

impl From<HttpError> for ReadError {
    fn from(e: HttpError) -> ReadError {
        match e {
            HttpError::Malformed(m) => ReadError::Malformed(m),
            HttpError::TooLarge => ReadError::TooLarge,
            HttpError::Unsupported(m) => ReadError::Unsupported(m),
        }
    }
}

/// Read one request off a blocking stream by driving the shared
/// incremental parser — the same state machine the epoll listener
/// resumes across readiness events, fed here from synchronous reads.
fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    let deadline = std::time::Instant::now() + READ_DEADLINE;
    let mut parser = http1::RequestParser::new(HttpLimits {
        max_head_bytes: MAX_HEAD_BYTES,
        max_body_bytes: max_body,
    });
    loop {
        if let Some(req) = parser.poll()? {
            return Ok(req);
        }
        // curl sends `Expect: 100-continue` for bodies over ~1 KiB
        // and waits for the interim response before transmitting the
        // body.
        if parser.wants_continue() {
            if stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err() {
                return Err(ReadError::Io);
            }
            let _ = stream.flush();
        }
        if std::time::Instant::now() > deadline {
            return Err(ReadError::Malformed(
                "request read deadline exceeded".into(),
            ));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            // EOF mid-head is a silently closed connection (no reply);
            // EOF mid-body truncated a declared Content-Length.
            Ok(0) => {
                return Err(if parser.in_body() {
                    ReadError::Malformed("truncated body".into())
                } else {
                    ReadError::Io
                })
            }
            Ok(n) => parser.feed(&chunk[..n]),
            Err(_) => return Err(ReadError::Io),
        }
    }
}

pub(crate) fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// The JSON content type every route used before `/metrics` and
/// `/debug/requests` introduced non-JSON bodies.
pub(crate) const JSON: &str = "application/json";

/// The Prometheus text-exposition content type (format version 0.0.4).
const PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Newline-delimited JSON — the `/debug/requests` body.
const NDJSON: &str = "application/x-ndjson";

/// Parse a `u64` query parameter, defaulting when absent.
fn query_u64(req: &Request, name: &str, default: u64) -> Result<u64, ServiceError> {
    match req.query.iter().find(|(k, _)| k == name) {
        None => Ok(default),
        Some((_, v)) => v
            .parse()
            .map_err(|_| ServiceError::BadRequest(format!("bad {name} value {v:?}"))),
    }
}

fn handle_connection(service: &Service, mut stream: TcpStream) {
    // Per-read/-write socket timeouts plus the overall READ_DEADLINE
    // in read_request bound how long any client — silent, slow-drip,
    // or never reading — can hold a worker thread.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let req = match read_request(&mut stream, service.config.max_body_bytes) {
        Ok(req) => req,
        Err(ReadError::Malformed(m)) => {
            write_response(&mut stream, 400, JSON, &error_body(&m));
            return;
        }
        Err(ReadError::TooLarge) => {
            write_response(
                &mut stream,
                413,
                JSON,
                &error_body("request body too large"),
            );
            return;
        }
        Err(ReadError::Unsupported(m)) => {
            write_response(&mut stream, 501, JSON, &error_body(&m));
            return;
        }
        Err(ReadError::Io) => return,
    };
    let (status, content_type, body) = route(service, &req);
    write_response(&mut stream, status, content_type, &body);
}

/// The endpoint label of an analysis path (`/analyze` → `analyze` …).
fn endpoint_of_path(path: &str) -> Endpoint {
    match path {
        "/analyze" => Endpoint::Analyze,
        "/graph" => Endpoint::Graph,
        "/correctness" => Endpoint::Correctness,
        "/invariants" => Endpoint::Invariants,
        "/simulate" => Endpoint::Simulate,
        _ => Endpoint::Other,
    }
}

/// Dispatch one request to its endpoint. Returns the status, the
/// response content type, and the body.
pub(crate) fn route(service: &Service, req: &Request) -> (u16, &'static str, Arc<String>) {
    const ANALYSES: [&str; 5] = [
        "/analyze",
        "/graph",
        "/correctness",
        "/invariants",
        "/simulate",
    ];
    let json = |(status, body)| (status, JSON, body);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => json(service.observed(Endpoint::Healthz, || {
            let (status, body) = service.healthz();
            (status, Arc::new(body))
        })),
        ("GET", "/slo") => {
            json(service.observed(Endpoint::Slo, || (200, Arc::new(service.slo_text()))))
        }
        ("GET", "/metrics/history") => json(service.observed(Endpoint::MetricsHistory, || {
            let params =
                query_u64(req, "window", 300).and_then(|w| Ok((w, query_u64(req, "step", 5)?)));
            let series = req
                .query
                .iter()
                .find(|(k, _)| k == "series")
                .map(|(_, v)| v.as_str());
            match params.and_then(|(w, s)| service.history_text(w, s, series)) {
                Ok(body) => (200, Arc::new(body)),
                Err(e) => (e.status(), Arc::new(error_body(&e.to_string()))),
            }
        })),
        ("GET", "/alerts") => {
            json(service.observed(Endpoint::Alerts, || (200, Arc::new(service.alerts_text()))))
        }
        ("POST", "/alerts/silence") => json(service.observed(Endpoint::AlertsSilence, || {
            match std::str::from_utf8(&req.body) {
                Ok(text) => {
                    let (status, body) = service.respond_silence(text);
                    (status, Arc::new(body))
                }
                Err(_) => (400, Arc::new(error_body("request body is not UTF-8"))),
            }
        })),
        ("GET", "/debug/slow") => {
            let (status, body) =
                service.observed(Endpoint::DebugSlow, || match query_u64(req, "n", 16) {
                    Ok(n) => {
                        let n = usize::try_from(n)
                            .unwrap_or(usize::MAX)
                            .min(metrics::SLOW_RING_CAP);
                        (200, Arc::new(service.debug_slow_text(n)))
                    }
                    Err(e) => (e.status(), Arc::new(error_body(&e.to_string()))),
                });
            let content_type = if status == 200 { NDJSON } else { JSON };
            (status, content_type, body)
        }
        ("GET", "/stats") => {
            json(service.observed(Endpoint::Stats, || (200, Arc::new(service.stats_json()))))
        }
        ("GET", "/metrics") => {
            let (status, body) = service.observed(Endpoint::Metrics, || {
                (200, Arc::new(service.metrics_text()))
            });
            (status, PROMETHEUS, body)
        }
        ("GET", "/debug/requests") => {
            let (status, body) =
                service.observed(Endpoint::DebugRequests, || match query_u64(req, "n", 16) {
                    Ok(n) => {
                        let n = usize::try_from(n)
                            .unwrap_or(usize::MAX)
                            .min(metrics::TRACE_RING_CAP);
                        (200, Arc::new(service.debug_requests_text(n)))
                    }
                    Err(e) => (e.status(), Arc::new(error_body(&e.to_string()))),
                });
            let content_type = if status == 200 { NDJSON } else { JSON };
            (status, content_type, body)
        }
        ("POST", "/sweep") => json(match std::str::from_utf8(&req.body) {
            Ok(text) => service.respond_sweep(text),
            Err(_) => (400, Arc::new(error_body("request body is not UTF-8"))),
        }),
        ("POST", "/optimize") => json(match std::str::from_utf8(&req.body) {
            Ok(text) => service.respond_optimize(text),
            Err(_) => (400, Arc::new(error_body("request body is not UTF-8"))),
        }),
        ("POST", "/whatif") => json(match std::str::from_utf8(&req.body) {
            Ok(text) => service.respond_whatif(text),
            Err(_) => (400, Arc::new(error_body("request body is not UTF-8"))),
        }),
        ("POST", "/v1") => json(match std::str::from_utf8(&req.body) {
            Ok(text) => service.respond_v1(text),
            Err(_) => (400, Arc::new(error_body("request body is not UTF-8"))),
        }),
        ("POST", path) if ANALYSES.contains(&path) => {
            // The whole arm sits in one observation so kind-parse and
            // budget-cap 400s are counted under the path's endpoint;
            // the inner respond() call's own observation is suppressed
            // by the nesting guard.
            json(service.observed(endpoint_of_path(path), || {
                let kind = match analysis_kind(req) {
                    Ok(kind) => kind,
                    Err(e) => return (e.status(), Arc::new(error_body(&e.to_string()))),
                };
                if let RequestKind::Simulate { events, .. } = kind {
                    if events > service.config.max_sim_events {
                        let e = ServiceError::BadRequest(format!(
                            "events {events} exceeds the limit {}",
                            service.config.max_sim_events
                        ));
                        return (e.status(), Arc::new(error_body(&e.to_string())));
                    }
                }
                match std::str::from_utf8(&req.body) {
                    Ok(text) => service.respond(kind, text),
                    Err(_) => (400, Arc::new(error_body("request body is not UTF-8"))),
                }
            }))
        }
        (_, path)
            if ANALYSES.contains(&path)
                || path == "/sweep"
                || path == "/optimize"
                || path == "/whatif"
                || path == "/v1"
                || path == "/healthz"
                || path == "/stats"
                || path == "/metrics"
                || path == "/metrics/history"
                || path == "/slo"
                || path == "/alerts"
                || path == "/alerts/silence"
                || path == "/debug/requests"
                || path == "/debug/slow" =>
        {
            json(service.observed(Endpoint::Other, || {
                (
                    405,
                    Arc::new(error_body(&format!("method {} not allowed", req.method))),
                )
            }))
        }
        (_, path) => json(service.observed(Endpoint::Other, || {
            (
                404,
                Arc::new(error_body(&format!("no such endpoint {path}"))),
            )
        })),
    }
}

fn analysis_kind(req: &Request) -> Result<RequestKind, ServiceError> {
    Ok(match req.path.as_str() {
        "/analyze" => RequestKind::Analyze,
        "/graph" => RequestKind::Graph,
        "/correctness" => RequestKind::Correctness,
        "/invariants" => RequestKind::Invariants,
        "/simulate" => RequestKind::Simulate {
            events: query_u64(req, "events", crate::analysis::DEFAULT_SIM_EVENTS)?,
            seed: query_u64(req, "seed", crate::analysis::DEFAULT_SIM_SEED)?,
        },
        other => {
            return Err(ServiceError::BadRequest(format!(
                "no such endpoint {other}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CYCLE: &str = "net c\nplace a init 1\nplace b\n\
        trans go in a out b firing 2\ntrans back in b out a firing 3";

    #[test]
    fn respond_caches_by_content() {
        let svc = Service::new(ServiceConfig::default());
        let (s1, b1) = svc.respond(RequestKind::Analyze, CYCLE);
        assert_eq!(s1, 200);
        // same net, different declaration order → same digest → hit
        let permuted = "net c\nplace b\nplace a init 1\n\
            trans back in b out a firing 3\ntrans go in a out b firing 2";
        let (s2, b2) = svc.respond(RequestKind::Analyze, permuted);
        assert_eq!(s2, 200);
        assert_eq!(b1, b2, "cache hit must be byte-identical");
        let stats = svc.cache().stats();
        assert_eq!(stats.computations, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn respond_maps_errors_to_statuses() {
        let svc = Service::new(ServiceConfig::default());
        let (status, body) = svc.respond(RequestKind::Analyze, "not a net");
        assert_eq!(status, 400);
        assert!(body.contains("parse error"), "{body}");
        let (status, body) = svc.respond(
            RequestKind::Analyze,
            "net d\nplace a init 1\nplace b\ntrans t in a out b firing 1",
        );
        assert_eq!(status, 422);
        assert!(body.contains("analysis error"), "{body}");
    }

    #[test]
    fn stats_json_shape() {
        let svc = Service::new(ServiceConfig::default());
        let (_, _) = svc.respond(RequestKind::Graph, CYCLE);
        let stats = svc.stats_json();
        assert!(stats.contains(r#""requests":1"#), "{stats}");
        assert!(stats.contains(r#""computations":1"#), "{stats}");
        assert!(stats.contains(r#""threads":4"#), "{stats}");
    }

    #[test]
    fn query_parsing() {
        let req = Request {
            method: "POST".into(),
            path: "/simulate".into(),
            query: vec![("events".into(), "100".into()), ("seed".into(), "7".into())],
            body: Vec::new(),
            close: false,
        };
        assert_eq!(
            analysis_kind(&req).unwrap(),
            RequestKind::Simulate {
                events: 100,
                seed: 7
            }
        );
        let bad = Request {
            method: "POST".into(),
            path: "/simulate".into(),
            query: vec![("events".into(), "many".into())],
            body: Vec::new(),
            close: false,
        };
        assert!(analysis_kind(&bad).is_err());
    }

    #[test]
    fn double_crlf_scanner() {
        assert_eq!(find_double_crlf(b"a\r\n\r\nbody"), Some(1));
        assert_eq!(find_double_crlf(b"no end"), None);
    }
}
