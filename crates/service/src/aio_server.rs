//! The epoll listener: one reactor thread multiplexing every
//! connection, compute on the worker pool.
//!
//! The threaded listener in [`crate::http`] spends one blocking pool
//! thread per in-flight *connection*, so its concurrency ceiling is
//! the pool size. This listener holds every connection as a small
//! state machine in a [`Slab`] and uses the pool only for the actual
//! analysis work: the reactor thread runs an edge-triggered
//! [`Poller`] loop, resumes the shared incremental HTTP/1.1 parser
//! with whatever bytes each readiness event delivers, and hands
//! complete requests to [`ThreadPool`] workers. Workers push the
//! finished response onto a completion queue and nudge the reactor
//! through its eventfd [`Waker`]; the reactor writes responses out —
//! small bodies as one `Content-Length` write, bodies over the
//! streaming threshold as `Transfer-Encoding: chunked` frames through
//! a bounded per-connection write buffer.
//!
//! Admission control has three layers, all tunable via
//! [`AioConfig`](crate::http::AioConfig):
//!
//! - a hard connection cap — connections beyond it get an immediate
//!   `503` and close;
//! - an in-flight request budget — at the budget the reactor
//!   deregisters the listener (accept-pause), pushing overload into
//!   the kernel backlog instead of its own memory, and re-registers
//!   when work drains (epoll level-checks at registration, so the
//!   parked backlog surfaces immediately);
//! - per-connection deadlines on a [`TimerWheel`] — idle keep-alive,
//!   slow-read (the slow-loris bound) and write-stall timers, the
//!   write timer re-armed on every write that makes progress.
//!
//! Shutdown is a graceful drain: stop accepting, close idle and
//! still-reading connections immediately, give in-flight responses
//! [`AioConfig::drain_ms`](crate::http::AioConfig::drain_ms) to
//! flush, then close whatever remains.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tpn_aio::http1::{HttpError, HttpLimits, RequestParser};
use tpn_aio::poll::{interest, Event, Poller};
use tpn_aio::slab::Slab;
use tpn_aio::timer::TimerWheel;
use tpn_aio::wake::Waker;

use crate::executor::ThreadPool;
use crate::http::{
    reason, route, spawn_sampler, AioConfig, Request, ServerHandle, Service, JSON, MAX_HEAD_BYTES,
};
use crate::json::error_body;

/// Fixed poller tokens for the two non-connection descriptors. Slab
/// tokens are `(generation << 32) | index` and reach these values only
/// after ~2^32 slot reuses of the highest slot — never in practice.
const LISTENER: u64 = u64::MAX;
const WAKER: u64 = u64::MAX - 1;

/// Timer wheel tick and length: 6.4 s per rotation; longer deadlines
/// (the 30 s read and 60 s idle defaults) ride extra rotations.
const WHEEL_GRANULARITY_MS: u64 = 100;
const WHEEL_SLOTS: usize = 64;

/// No deadline armed (the connection is parked on the worker pool,
/// which is bounded by the in-flight budget, not a timer).
const NO_DEADLINE: u64 = u64::MAX;

/// Where a connection's state machine currently sits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Keep-alive gap: no request bytes buffered.
    Idle,
    /// A partial request is buffered; the read deadline is armed.
    Reading,
    /// A complete request is on the worker pool.
    Busy,
    /// A response (or parse-error response) is flushing out.
    Writing,
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    phase: Phase,
    /// Userspace readiness (edge-triggered: set by events, cleared on
    /// `WouldBlock`).
    readable: bool,
    writable: bool,
    /// The peer closed its write side; serve what is buffered, then
    /// close.
    eof: bool,
    /// Input processing suspended because the in-flight budget is
    /// spent; the token sits in the reactor's parked queue and gets
    /// re-driven as completions free budget.
    parked: bool,
    /// Staged output bytes; `out_pos..` is still unwritten.
    out: Vec<u8>,
    out_pos: usize,
    /// A body streaming out as chunked frames: `(body, offset)`.
    streaming: Option<(Arc<String>, usize)>,
    /// Close once the current response has flushed.
    close_after: bool,
    /// Responses dispatched on this connection (keep-alive bound).
    served: u64,
    opened: Instant,
    /// Current logical deadline on the reactor clock ([`NO_DEADLINE`]
    /// when parked on the pool).
    deadline_at: u64,
    /// Earliest wheel entry armed for this token, if any — wheel
    /// entries are never cancelled, only ignored or re-inserted when
    /// they fire.
    wheel_at: Option<u64>,
}

impl Conn {
    fn pending_out(&self) -> bool {
        self.out_pos < self.out.len() || self.streaming.is_some()
    }
}

/// One finished request, handed back from a pool worker.
struct Completion {
    token: u64,
    status: u16,
    content_type: &'static str,
    body: Arc<String>,
}

/// Why a connection is being closed, for the counter taxonomy.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// Normal lifecycle: client close, keep-alive bound, response
    /// with `Connection: close`, transport error.
    Normal,
    /// A read or write deadline fired.
    Timeout,
    /// Graceful drain at shutdown.
    Drained,
}

struct Reactor {
    service: Arc<Service>,
    pool: ThreadPool,
    poller: Poller,
    waker: Waker,
    listener: TcpListener,
    conns: Slab<Conn>,
    wheel: TimerWheel,
    completions: Arc<Mutex<std::collections::VecDeque<Completion>>>,
    /// Connections whose input processing is suspended on the
    /// in-flight budget, in arrival order. Tokens may be stale by the
    /// time they are popped; the slab's generation check skips those.
    parked: std::collections::VecDeque<u64>,
    cfg: AioConfig,
    /// Resolved in-flight budget (`cfg.inflight`, or the pool queue
    /// capacity when 0 — which also guarantees `try_execute` never
    /// finds the queue full).
    budget: usize,
    inflight: usize,
    /// Listener deregistered from the poller (accept-pause).
    paused: bool,
    draining: bool,
    drain_until: u64,
    start: Instant,
    stop: Arc<AtomicBool>,
    limits: HttpLimits,
}

impl Reactor {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let now = self.now_ms();
            let timeout = if self.draining {
                // Poll the drain budget even if no fd turns ready.
                Some(Duration::from_millis(
                    WHEEL_GRANULARITY_MS.min(self.drain_until.saturating_sub(now).max(1)),
                ))
            } else {
                self.wheel
                    .next_timeout_ms(now)
                    .map(|ms| Duration::from_millis(ms.max(1)))
            };
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            for event in &events {
                match event.token {
                    WAKER => self.waker.drain(),
                    LISTENER => self.accept_ready(),
                    token => self.conn_event(token, event),
                }
            }
            self.drain_completions();
            let now = self.now_ms();
            self.fire_timers(now);
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain(now);
            }
            if self.draining && (self.conns.is_empty() || now >= self.drain_until) {
                for token in self.conns.tokens() {
                    self.close(token, CloseReason::Drained);
                }
                break;
            }
        }
    }

    // ---- admission ----

    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (EMFILE under fd
                // exhaustion): stop this batch; the next readiness
                // event retries.
                Err(_) => break,
            };
            if self.draining {
                continue;
            }
            if self.conns.len() >= self.cfg.max_connections {
                reject_over_capacity(stream, &self.service);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            self.service.connections().opened();
            let conn = Conn {
                stream,
                parser: RequestParser::new(self.limits),
                phase: Phase::Idle,
                readable: false,
                // A fresh socket is writable; if not, the first write
                // returns WouldBlock and clears this.
                writable: true,
                eof: false,
                parked: false,
                out: Vec::new(),
                out_pos: 0,
                streaming: None,
                close_after: false,
                served: 0,
                opened: Instant::now(),
                deadline_at: NO_DEADLINE,
                wheel_at: None,
            };
            let token = self.conns.insert(conn);
            let now = self.now_ms();
            let idle = self.cfg.idle_deadline_ms;
            {
                let conn = self.conns.get_mut(token).expect("just inserted");
                arm(conn, &mut self.wheel, token, now + idle);
            }
            let fd = {
                use std::os::fd::AsRawFd;
                self.conns
                    .get(token)
                    .expect("just inserted")
                    .stream
                    .as_raw_fd()
            };
            if self
                .poller
                .add(fd, token, interest::READ | interest::WRITE)
                .is_err()
            {
                self.close(token, CloseReason::Normal);
            }
        }
    }

    fn pause_accept(&mut self) {
        if !self.paused {
            use std::os::fd::AsRawFd;
            let _ = self.poller.delete(self.listener.as_raw_fd());
            self.paused = true;
        }
    }

    fn resume_accept(&mut self) {
        if self.paused && !self.draining {
            use std::os::fd::AsRawFd;
            if self
                .poller
                .add(self.listener.as_raw_fd(), LISTENER, interest::READ)
                .is_ok()
            {
                self.paused = false;
            }
        }
    }

    // ---- event dispatch ----

    fn conn_event(&mut self, token: u64, event: &Event) {
        let Some(conn) = self.conns.get_mut(token) else {
            // Stale token: the connection closed earlier this batch.
            return;
        };
        if event.error {
            self.close(token, CloseReason::Normal);
            return;
        }
        if event.readable || event.hangup {
            conn.readable = true;
        }
        if event.writable {
            conn.writable = true;
        }
        self.drive(token);
    }

    /// Push the connection's state machine as far as readiness allows.
    fn drive(&mut self, token: u64) {
        // Flush staged output first (a response mid-write, or an
        // interim 100 Continue queued during Reading).
        let chunk = self.cfg.write_chunk;
        let write_deadline = self.now_ms() + self.cfg.write_deadline_ms;
        let idle_deadline = self.now_ms() + self.cfg.idle_deadline_ms;
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        if conn.pending_out() {
            match flush_out(conn, chunk) {
                FlushOutcome::Progress => {
                    if conn.phase == Phase::Writing {
                        // The client is consuming: re-arm the stall
                        // timer from now.
                        conn.deadline_at = write_deadline;
                        arm(conn, &mut self.wheel, token, write_deadline);
                    }
                    if conn.pending_out() {
                        return; // WouldBlock with data left
                    }
                }
                FlushOutcome::Blocked => return,
                FlushOutcome::Error => {
                    self.close(token, CloseReason::Normal);
                    return;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        if conn.phase == Phase::Writing && !conn.pending_out() {
            // Response fully flushed.
            if conn.close_after {
                self.close(token, CloseReason::Normal);
                return;
            }
            conn.phase = Phase::Idle;
            arm(conn, &mut self.wheel, token, idle_deadline);
        }
        let phase = self.conns.get(token).map(|c| c.phase);
        if matches!(phase, Some(Phase::Idle) | Some(Phase::Reading)) {
            self.process_input(token);
        }
    }

    /// Read, parse and (maybe) dispatch — the Idle/Reading engine.
    fn process_input(&mut self, token: u64) {
        let mut chunk = [0u8; 16 * 1024];
        let read_deadline = self.now_ms() + self.cfg.read_deadline_ms;
        let idle_deadline = self.now_ms() + self.cfg.idle_deadline_ms;
        loop {
            if self.inflight >= self.budget {
                // Budget spent: accept-pause alone cannot throttle
                // keep-alive clients already connected, so park this
                // connection — its bytes stay in the parser buffer and
                // the kernel socket — and re-drive it as completions
                // free budget, instead of shedding with a 503.
                let Some(conn) = self.conns.get_mut(token) else {
                    return;
                };
                if !conn.parked {
                    conn.parked = true;
                    self.parked.push_back(token);
                }
                return;
            }
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            match conn.parser.poll() {
                Err(e) => {
                    self.error_response(token, &e);
                    return;
                }
                Ok(Some(req)) => {
                    self.dispatch(token, req);
                    return;
                }
                Ok(None) => {}
            }
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            if conn.parser.wants_continue() {
                conn.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                let chunk_cap = self.cfg.write_chunk;
                if matches!(flush_out(conn, chunk_cap), FlushOutcome::Error) {
                    self.close(token, CloseReason::Normal);
                    return;
                }
            }
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            if conn.eof {
                // Peer finished sending and nothing dispatchable is
                // left: a clean close (mid-request EOFs get no reply,
                // matching the threaded listener).
                self.close(token, CloseReason::Normal);
                return;
            }
            if !conn.readable {
                // Out of input: settle the phase and its deadline.
                let mid = conn.parser.mid_request();
                if mid && conn.phase != Phase::Reading {
                    conn.phase = Phase::Reading;
                    arm(conn, &mut self.wheel, token, read_deadline);
                } else if !mid && conn.phase != Phase::Idle {
                    conn.phase = Phase::Idle;
                    arm(conn, &mut self.wheel, token, idle_deadline);
                }
                return;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => conn.eof = true,
                Ok(n) => conn.parser.feed(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => conn.readable = false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(token, CloseReason::Normal);
                    return;
                }
            }
        }
    }

    /// Hand one complete request to the worker pool.
    fn dispatch(&mut self, token: u64, req: Request) {
        {
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            conn.phase = Phase::Busy;
            conn.deadline_at = NO_DEADLINE;
            conn.close_after = req.close;
            conn.served += 1;
        }
        self.inflight += 1;
        if self.inflight >= self.budget {
            self.pause_accept();
        }
        let svc = Arc::clone(&self.service);
        let completions = Arc::clone(&self.completions);
        let waker = self.waker.clone();
        let job = move || {
            let (status, content_type, body) = route(&svc, &req);
            completions
                .lock()
                .expect("completion queue lock")
                .push_back(Completion {
                    token,
                    status,
                    content_type,
                    body,
                });
            waker.wake();
        };
        match self.pool.try_execute(job) {
            Ok(None) => {}
            Ok(Some(_)) => {
                // Queue full despite the budget (only reachable with
                // an explicit inflight override above queue_cap):
                // shed the request instead of blocking the reactor.
                self.inflight -= 1;
                let body = Arc::new(error_body("server is overloaded"));
                self.respond(token, 503, JSON, &body, true);
            }
            Err(_) => {
                self.inflight -= 1;
                self.close(token, CloseReason::Normal);
            }
        }
    }

    /// Turn a parse error into the same status/body the threaded
    /// listener sends, then close.
    fn error_response(&mut self, token: u64, e: &HttpError) {
        let (status, body) = match e {
            HttpError::Malformed(m) => (400, error_body(m)),
            HttpError::TooLarge => (413, error_body("request body too large")),
            HttpError::Unsupported(m) => (501, error_body(m)),
        };
        self.respond(token, status, JSON, &Arc::new(body), true);
    }

    /// Stage one response on the connection and start flushing it.
    /// `force_close` closes regardless of keep-alive state.
    fn respond(
        &mut self,
        token: u64,
        status: u16,
        content_type: &'static str,
        body: &Arc<String>,
        force_close: bool,
    ) {
        let now = self.now_ms();
        let write_deadline = now + self.cfg.write_deadline_ms;
        let max_requests = self.cfg.max_requests_per_conn.max(1);
        let threshold = self.cfg.stream_threshold;
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        let close =
            force_close || conn.close_after || conn.served >= max_requests || draining || conn.eof;
        conn.close_after = close;
        let connection = if close { "close" } else { "keep-alive" };
        if body.len() > threshold {
            let head = format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
                status,
                reason(status),
                content_type,
                connection,
            );
            conn.out.extend_from_slice(head.as_bytes());
            conn.streaming = Some((Arc::clone(body), 0));
        } else {
            let head = format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
                status,
                reason(status),
                content_type,
                body.len(),
                connection,
            );
            conn.out.extend_from_slice(head.as_bytes());
            conn.out.extend_from_slice(body.as_bytes());
        }
        conn.phase = Phase::Writing;
        conn.deadline_at = write_deadline;
        arm(conn, &mut self.wheel, token, write_deadline);
        self.drive(token);
    }

    fn drain_completions(&mut self) {
        loop {
            let completion = {
                let mut queue = self.completions.lock().expect("completion queue lock");
                queue.pop_front()
            };
            let Some(c) = completion else { break };
            self.inflight = self.inflight.saturating_sub(1);
            if self.conns.get(c.token).is_some() {
                self.respond(c.token, c.status, c.content_type, &c.body, false);
            }
            // else: the client vanished while we computed.
        }
        // Freed budget goes to parked connections first (they were
        // throttled earliest), then to the listener.
        while self.inflight < self.budget {
            let Some(token) = self.parked.pop_front() else {
                break;
            };
            let Some(conn) = self.conns.get_mut(token) else {
                continue; // closed while parked; generation mismatch
            };
            if !conn.parked {
                continue;
            }
            conn.parked = false;
            self.drive(token);
        }
        if self.paused && self.inflight < self.budget {
            self.resume_accept();
        }
    }

    // ---- deadlines ----

    fn fire_timers(&mut self, now: u64) {
        let mut fired = Vec::new();
        self.wheel.advance(now, |token| fired.push(token));
        for token in fired {
            let Some(conn) = self.conns.get_mut(token) else {
                continue;
            };
            conn.wheel_at = None;
            if conn.deadline_at == NO_DEADLINE {
                continue; // parked on the pool; no timer applies
            }
            if now < conn.deadline_at {
                // Deadline moved later since this entry was armed:
                // re-insert at the real deadline (lazy cancellation).
                let t = conn.deadline_at;
                arm(conn, &mut self.wheel, token, t);
                continue;
            }
            match conn.phase {
                Phase::Idle => self.close(token, CloseReason::Normal),
                Phase::Reading => {
                    // The threaded listener answers a slow-drip client
                    // with this exact 400 — keep parity, then close.
                    self.service.connections().timeout();
                    let body = Arc::new(error_body("request read deadline exceeded"));
                    self.respond(token, 400, JSON, &body, true);
                }
                Phase::Writing => {
                    self.service.connections().timeout();
                    self.close(token, CloseReason::Timeout);
                }
                Phase::Busy => {}
            }
        }
    }

    // ---- teardown ----

    fn begin_drain(&mut self, now: u64) {
        self.draining = true;
        self.drain_until = now + self.cfg.drain_ms;
        self.pause_accept();
        for token in self.conns.tokens() {
            let phase = self.conns.get(token).map(|c| c.phase);
            if matches!(phase, Some(Phase::Idle) | Some(Phase::Reading)) {
                self.close(token, CloseReason::Drained);
            }
        }
    }

    fn close(&mut self, token: u64, why: CloseReason) {
        let Some(conn) = self.conns.remove(token) else {
            return;
        };
        let stats = self.service.connections();
        match why {
            CloseReason::Normal => {}
            // `timeout()` for deadline closes that also send a
            // response body is counted at the respond site; this arm
            // covers closes with nothing more to say.
            CloseReason::Timeout => {}
            CloseReason::Drained => stats.drain(),
        }
        stats.closed(conn.opened.elapsed().as_nanos() as u64);
        // Dropping the stream closes the fd, which deregisters it
        // from epoll; stale events for this token fail the slab's
        // generation check.
        drop(conn);
    }
}

/// Best-effort `503` for a connection over the hard cap: one
/// nonblocking write, then drop. The socket was never admitted, so
/// only the reject counter moves.
fn reject_over_capacity(stream: TcpStream, service: &Service) {
    service.connections().reject();
    let mut stream = stream;
    let _ = stream.set_nonblocking(true);
    let body = error_body("connection limit reached");
    let head = format!(
        "HTTP/1.1 503 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        reason(503),
        JSON,
        body.len(),
        body,
    );
    let _ = stream.write(head.as_bytes());
}

enum FlushOutcome {
    /// Wrote at least one byte (possibly everything).
    Progress,
    /// `WouldBlock` before any byte moved.
    Blocked,
    /// Transport error; the connection is dead.
    Error,
}

/// Write staged bytes, refilling from the streaming body in
/// `write_chunk`-sized chunked frames, until done or `WouldBlock`.
/// The staged buffer never holds more than one frame beyond what the
/// kernel has refused — that bound is the whole point of streaming.
fn flush_out(conn: &mut Conn, write_chunk: usize) -> FlushOutcome {
    let mut progressed = false;
    loop {
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            let Some((body, offset)) = conn.streaming.take() else {
                return if progressed {
                    FlushOutcome::Progress
                } else {
                    FlushOutcome::Blocked
                };
            };
            let bytes = body.as_bytes();
            let take = write_chunk.max(1).min(bytes.len() - offset);
            conn.out
                .extend_from_slice(format!("{take:x}\r\n").as_bytes());
            conn.out.extend_from_slice(&bytes[offset..offset + take]);
            conn.out.extend_from_slice(b"\r\n");
            if offset + take < bytes.len() {
                conn.streaming = Some((body, offset + take));
            } else {
                conn.out.extend_from_slice(b"0\r\n\r\n");
            }
        }
        if !conn.writable {
            return if progressed {
                FlushOutcome::Progress
            } else {
                FlushOutcome::Blocked
            };
        }
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return FlushOutcome::Error,
            Ok(n) => {
                conn.out_pos += n;
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.writable = false;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return FlushOutcome::Error,
        }
    }
}

/// Arm (or tighten) the wheel entry backing `conn`'s current
/// deadline. Entries are append-only: a later deadline leaves the
/// earlier entry in place to fire, notice `deadline_at` moved, and
/// re-insert itself.
fn arm(conn: &mut Conn, wheel: &mut TimerWheel, token: u64, deadline_ms: u64) {
    conn.deadline_at = deadline_ms;
    match conn.wheel_at {
        Some(at) if at <= deadline_ms => {}
        _ => {
            wheel.insert(token, deadline_ms);
            conn.wheel_at = Some(deadline_ms);
        }
    }
}

/// Bind `addr` and serve `service` on the epoll reactor. The returned
/// handle shuts the reactor down through its eventfd waker.
pub(crate) fn spawn_epoll(service: Arc<Service>, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let cfg = service.config().aio.clone();
    // Each connection is one fd; leave generous headroom for the
    // listener, eventfd, epoll fd and the rest of the process.
    let _ = tpn_aio::rlimit::ensure_nofile(cfg.max_connections as u64 * 2 + 256);
    let poller = Poller::new()?;
    let waker = Waker::new()?;
    {
        use std::os::fd::AsRawFd;
        poller.add(listener.as_raw_fd(), LISTENER, interest::READ)?;
        poller.add(waker.fd(), WAKER, interest::READ)?;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let sampler_thread = spawn_sampler(&service, &stop)?;
    let pool = ThreadPool::new(service.config().threads, service.config().queue_cap);
    let budget = if cfg.inflight == 0 {
        pool.queue_cap()
    } else {
        cfg.inflight
    };
    let limits = HttpLimits {
        max_head_bytes: MAX_HEAD_BYTES,
        max_body_bytes: service.config().max_body_bytes,
    };
    let mut reactor = Reactor {
        service,
        pool,
        poller,
        waker: waker.clone(),
        listener,
        conns: Slab::new(),
        wheel: TimerWheel::new(WHEEL_GRANULARITY_MS, WHEEL_SLOTS),
        completions: Arc::new(Mutex::new(std::collections::VecDeque::new())),
        parked: std::collections::VecDeque::new(),
        cfg,
        budget: budget.max(1),
        inflight: 0,
        paused: false,
        draining: false,
        drain_until: 0,
        start: Instant::now(),
        stop: Arc::clone(&stop),
        limits,
    };
    let accept_thread = std::thread::Builder::new()
        .name("tpn-reactor".to_string())
        .spawn(move || reactor.run())?;
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        sampler_thread,
        waker: Some(waker),
    })
}
