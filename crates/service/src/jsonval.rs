//! A minimal JSON *parser* — the read-side counterpart of
//! [`crate::json`] (the workspace has no registry access, hence no
//! serde).
//!
//! The `/sweep` endpoint is the first in the daemon to accept a JSON
//! request body, so this module implements the subset of RFC 8259 the
//! service needs: full value grammar, string escapes including
//! `\uXXXX` surrogate pairs, and a nesting-depth cap as an input
//! sanity bound. Numbers are kept as their **raw source tokens**
//! rather than converted to `f64`: sweep grids are exact rational
//! values (`"106.7"` must mean `1067/10`, not the nearest double), and
//! the conversion happens at the schema layer where the target type is
//! known.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source token (e.g. `"-12"`, `"106.7"`).
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs (duplicate keys rejected).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document (trailing non-whitespace is an error).
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The raw number token, if this is a number.
    pub fn as_num(&self) -> Option<&str> {
        match self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting-depth cap: a 4 KiB body of `[` must not recurse 4096 deep.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", char::from(b))))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", char::from(c)))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        // Duplicate detection must stay linear: a 1 MiB body of
        // same-prefix keys would make a scan-per-key quadratic in
        // string comparisons — free CPU burn for a hostile client.
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if !seen.insert(key.clone()) {
                return Err(JsonParseError {
                    offset: key_at,
                    message: format!("duplicate key {key:?}"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str: valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Four hex digits after `\u`, pairing surrogates.
    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digit_start = self.pos;
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[digit_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii number token")
            .to_string();
        Ok(Json::Num(token))
    }

    fn digits(&mut self) -> Result<usize, JsonParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a digit"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5").unwrap(), Json::Num("-12.5".into()));
        assert_eq!(Json::parse("3e8").unwrap(), Json::Num("3e8".into()));
        assert_eq!(
            Json::parse(r#""hé\"\n\u0041""#).unwrap(),
            Json::Str("hé\"\nA".into())
        );
    }

    #[test]
    fn containers_and_lookup() {
        let v = Json::parse(r#"{"a":[1,"x",{"b":true}],"n":null}"#).unwrap();
        assert_eq!(v.kind(), "object");
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0], Json::Num("1".into()));
        assert_eq!(a[2].get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn numbers_keep_raw_tokens() {
        let v = Json::parse("106.7").unwrap();
        assert_eq!(v.as_num(), Some("106.7"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "01",
            "1.",
            "\"\\q\"",
            "{} extra",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_cap_rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn roundtrip_with_the_writer() {
        // The writer's output is always parseable by this parser.
        let mut w = crate::json::JsonWriter::new();
        w.begin_object();
        w.key("s");
        w.string("a\"b\\c\n");
        w.key("xs");
        w.begin_array();
        w.uint(7);
        w.bool(false);
        w.end_array();
        w.end_object();
        let text = w.finish();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\n"));
    }
}
