//! The parameter-synthesis request: JSON spec in, certified optimum out.
//!
//! An optimize request names one performance-measure **target**, a
//! **goal** (`max`/`min`) and a **box** of per-attribute bounds over the
//! net's timing/frequency symbols. The boxed attributes are lifted to
//! symbols ([`tpn_reach::LiftedDomain`]), the target's closed form is
//! exported, and [`tpn_opt::optimize`] finds the best point of
//! box ∩ validity-region — with an exact Sturm-sequence certificate for
//! one-axis boxes, and grid-seeded gradient refinement (exactly
//! re-verified) otherwise. [`optimize_json`] is the single producer of
//! optimize JSON in the workspace: `POST /optimize` and `tpn optimize`
//! both call it, so server and CLI output are byte-identical and cached
//! responses equal fresh ones.
//!
//! ## Spec schema
//!
//! ```json
//! {
//!   "target": "throughput:t7",
//!   "goal": "max",
//!   "box": [{"symbol": "E(t3)", "from": "300", "to": "2050"}],
//!   "seed_points": 4096,
//!   "tolerance": "1/1048576"
//! }
//! ```
//!
//! `goal` defaults to `"max"`, `seed_points` (the multivariate seeding
//! budget) to 4096, `tolerance` (the univariate bracket width) to a
//! `2^-20` fraction of the box width. The HTTP request body is this
//! object plus a `"net"` member carrying the `.tpn` text. Results are
//! cached under `(net digest, spec hash)` exactly like sweeps.
//!
//! ## Response
//!
//! `point` maps each boxed symbol to its optimal exact-rational value;
//! `value`/`value_f64` give the objective there; `certified` says
//! whether `certificate` is an exact proof (see
//! [`tpn_core::OptCertificate`]) or numeric evidence.

use tpn_core::{OptCertificate, OptGoal};
use tpn_opt::{optimize, OptError, OptOptions};
use tpn_rational::Rational;
use tpn_session::Session;
use tpn_symbolic::Symbol;

use crate::analysis::ServiceError;
use crate::json::JsonWriter;
use crate::jsonval::Json;
use crate::sweep::{
    bad, rational_value, resolve_symbol, resolve_target, spec_hash, u64_value, TargetSpec, MAX_AXES,
};

/// Default multivariate seed-grid budget.
pub const DEFAULT_SEED_POINTS: u64 = 4096;

/// One box axis: a canonical attribute symbol and its bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxAxisSpec {
    /// Canonical symbol name, e.g. `"E(t3)"`.
    pub symbol: String,
    /// Lower bound (inclusive, strictly positive).
    pub from: Rational,
    /// Upper bound (inclusive).
    pub to: Rational,
}

/// A parsed, validated optimize specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeSpec {
    /// The measure to optimise.
    pub target: TargetSpec,
    /// Search direction.
    pub goal: OptGoal,
    /// The box, one axis per lifted attribute.
    pub axes: Vec<BoxAxisSpec>,
    /// Multivariate seed-grid point budget.
    pub seed_points: u64,
    /// Univariate bracket-width bound (`None` → box width / 2^20).
    pub tolerance: Option<Rational>,
}

impl OptimizeSpec {
    /// Parse a spec from a JSON object. A `"net"` member is ignored
    /// here (the HTTP endpoint carries the net text in-body); any other
    /// unknown member is rejected so typos cannot silently change the
    /// request's meaning.
    pub fn from_json(doc: &Json) -> Result<OptimizeSpec, ServiceError> {
        let members = doc
            .as_obj()
            .ok_or_else(|| bad(format!("spec must be an object, got {}", doc.kind())))?;
        for (k, _) in members {
            if !matches!(
                k.as_str(),
                "net" | "target" | "goal" | "box" | "seed_points" | "tolerance"
            ) {
                return Err(bad(format!("unknown spec member {k:?}")));
            }
        }
        let target = TargetSpec::parse(
            doc.get("target")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("spec needs a \"target\" string"))?,
        )?;
        let goal = match doc.get("goal") {
            None => OptGoal::Maximize,
            Some(Json::Str(s)) => OptGoal::parse(s)
                .ok_or_else(|| bad(format!("goal must be \"max\" or \"min\", got {s:?}")))?,
            Some(other) => {
                return Err(bad(format!(
                    "goal must be \"max\" or \"min\", got {}",
                    other.kind()
                )))
            }
        };
        let axes_json = doc
            .get("box")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("spec needs a \"box\" array of axes"))?;
        if axes_json.is_empty() {
            return Err(bad("\"box\" must have at least one axis"));
        }
        if axes_json.len() > MAX_AXES {
            return Err(bad(format!("more than {MAX_AXES} box axes")));
        }
        let mut axes: Vec<BoxAxisSpec> = Vec::with_capacity(axes_json.len());
        for a in axes_json {
            let members = a
                .as_obj()
                .ok_or_else(|| bad(format!("each box axis must be an object, got {}", a.kind())))?;
            for (k, _) in members {
                if !matches!(k.as_str(), "symbol" | "from" | "to") {
                    return Err(bad(format!("unknown box-axis member {k:?}")));
                }
            }
            let symbol = a
                .get("symbol")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("each box axis needs a \"symbol\" string"))?
                .to_string();
            let from = rational_value(
                a.get("from")
                    .ok_or_else(|| bad(format!("box axis {symbol:?} is missing \"from\"")))?,
                "from",
            )?;
            let to = rational_value(
                a.get("to")
                    .ok_or_else(|| bad(format!("box axis {symbol:?} is missing \"to\"")))?,
                "to",
            )?;
            if !from.is_positive() {
                return Err(bad(format!(
                    "box axis {symbol:?}: \"from\" must be strictly positive \
                     (times and frequencies are), got {from}"
                )));
            }
            if from > to {
                return Err(bad(format!("box axis {symbol:?} has from > to")));
            }
            if axes.iter().any(|b| b.symbol == symbol) {
                return Err(bad(format!("duplicate box axis {symbol:?}")));
            }
            axes.push(BoxAxisSpec { symbol, from, to });
        }
        let seed_points = match doc.get("seed_points") {
            None => DEFAULT_SEED_POINTS,
            Some(v) => {
                let n = u64_value(v, "seed_points")?;
                if n == 0 {
                    return Err(bad("seed_points must be at least 1"));
                }
                n
            }
        };
        let tolerance = match doc.get("tolerance") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let t = rational_value(v, "tolerance")?;
                if !t.is_positive() {
                    return Err(bad(format!("tolerance must be positive, got {t}")));
                }
                Some(t)
            }
        };
        Ok(OptimizeSpec {
            target,
            goal,
            axes,
            seed_points,
            tolerance,
        })
    }

    /// The canonical one-line JSON rendering: fixed member order,
    /// rationals in reduced `n/d` form, defaults materialised. Two
    /// specs with the same canonical form are the same request — this
    /// string is what [`spec_hash`] fingerprints.
    pub fn canonical(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("target");
        w.string(&self.target.canonical());
        w.key("goal");
        w.string(self.goal.name());
        w.key("box");
        w.begin_array();
        for a in &self.axes {
            w.begin_object();
            w.key("symbol");
            w.string(&a.symbol);
            w.key("from");
            w.rational(&a.from);
            w.key("to");
            w.rational(&a.to);
            w.end_object();
        }
        w.end_array();
        w.key("seed_points");
        w.uint(self.seed_points);
        w.key("tolerance");
        match &self.tolerance {
            Some(t) => w.rational(t),
            None => w.null(),
        }
        w.end_object();
        w.finish()
    }
}

impl crate::spec::Spec for OptimizeSpec {
    fn canonical(&self) -> String {
        OptimizeSpec::canonical(self)
    }
}

/// Map an optimiser error onto the service's status vocabulary: spec-
/// shaped problems are 400s, analysis outcomes (infeasible region,
/// poles, exact-arithmetic overflow) are 422s.
fn opt_error(e: OptError) -> ServiceError {
    match e {
        OptError::EmptyBox
        | OptError::DuplicateSymbol { .. }
        | OptError::InvalidBounds { .. }
        | OptError::Eval(_) => ServiceError::BadRequest(e.to_string()),
        _ => ServiceError::Analysis(e.to_string()),
    }
}

/// Execute an optimize request through `session` and render the
/// response document. Returns the JSON body and whether the optimum is
/// exactly certified. Thread count and the seed budget cap come from
/// the session's [`SessionOptions`](tpn_session::SessionOptions).
/// Deterministic at any thread count (threads only parallelise the
/// seeding sweep, whose reduction is order-fixed), which makes the
/// result cacheable and the CLI output byte-comparable to the server's
/// — and the lift and exported closed form are session artifacts,
/// shared with any `/sweep` over the same axes.
pub fn optimize_json(
    session: &Session,
    spec: &OptimizeSpec,
) -> Result<(String, bool), ServiceError> {
    let _span = tpn_obs::trace::span("render");
    let net = session.net();
    let threads = session.options().threads_or_default();
    let max_seed_points = session.options().max_points_or_default();
    // The seed budget only matters when a seed grid is actually built:
    // the exact univariate engine (one box axis) never grid-seeds, so
    // a server with a small sweep cap must not reject its default spec.
    if spec.axes.len() > 1 && spec.seed_points > max_seed_points {
        return Err(bad(format!(
            "seed_points {} exceeds the limit {max_seed_points}",
            spec.seed_points
        )));
    }
    // Resolve names against the net before any expensive work.
    let swept: Vec<Symbol> = spec
        .axes
        .iter()
        .map(|a| resolve_symbol(net, &a.symbol))
        .collect::<Result<_, _>>()?;
    let target = resolve_target(net, &spec.target)?;

    // Derive the target's closed form through the lift — both the lift
    // and the exported expression are memoized session artifacts (the
    // compiled program riding along is what a sweep of the same shape
    // evaluates).
    let analysis_err = |e: tpn_session::SessionError| ServiceError::Analysis(e.to_string());
    let artifact = session
        .compiled(&swept, &[target], false)
        .map_err(analysis_err)?;
    let objective = artifact.exprs[0].clone();
    // One pass over the region (retained inside the compiled artifact,
    // so a compiled hit never re-demands the lift): the strings feed
    // the response, the constraints the solver.
    let (region_texts, region): (Vec<String>, Vec<tpn_symbolic::Constraint>) =
        artifact.lifted.domain.region_entries().into_iter().unzip();

    let axes: Vec<(Symbol, Rational, Rational)> = swept
        .iter()
        .zip(&spec.axes)
        .map(|(&s, a)| (s, a.from, a.to))
        .collect();
    let opts = OptOptions {
        threads,
        seed_points: spec.seed_points,
        tolerance: spec.tolerance,
        ..OptOptions::default()
    };
    let optimum = optimize(&objective, &axes, &region, spec.goal, &opts).map_err(opt_error)?;

    let engine = if axes.len() == 1 {
        "exact-univariate"
    } else {
        "grid-gradient"
    };
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("kind");
    w.string("optimize");
    w.key("net");
    w.string(net.name());
    w.key("digest");
    w.string(&net.digest().to_hex());
    w.key("spec_hash");
    w.string(&format!("{:032x}", spec_hash(&spec.canonical())));
    w.key("target");
    w.string(&spec.target.canonical());
    w.key("goal");
    w.string(spec.goal.name());
    w.key("engine");
    w.string(engine);
    w.key("box");
    w.begin_array();
    for a in &spec.axes {
        w.begin_object();
        w.key("symbol");
        w.string(&a.symbol);
        w.key("from");
        w.rational(&a.from);
        w.key("to");
        w.rational(&a.to);
        w.end_object();
    }
    w.end_array();
    w.key("region");
    w.begin_array();
    for c in &region_texts {
        w.string(c);
    }
    w.end_array();
    w.key("point");
    w.begin_object();
    for (s, v) in &optimum.point {
        w.key(&s.name());
        w.rational(v);
    }
    w.end_object();
    w.key("value");
    match &optimum.value {
        Some(v) => w.rational(v),
        None => w.null(),
    }
    w.key("value_f64");
    w.float(optimum.value_f64);
    let certified = optimum.certified();
    w.key("certified");
    w.bool(certified);
    w.key("certificate");
    w.begin_object();
    w.key("kind");
    w.string(optimum.certificate.kind());
    match &optimum.certificate {
        OptCertificate::Interior {
            exact,
            bracket,
            sign_below,
            sign_above,
        } => {
            w.key("exact");
            w.bool(*exact);
            w.key("bracket");
            w.begin_array();
            w.rational(&bracket.0);
            w.rational(&bracket.1);
            w.end_array();
            w.key("derivative_sign_below");
            w.int(i128::from(*sign_below));
            w.key("derivative_sign_above");
            w.int(i128::from(*sign_above));
        }
        OptCertificate::Boundary {
            upper,
            open,
            derivative_sign,
        } => {
            w.key("end");
            w.string(if *upper { "upper" } else { "lower" });
            w.key("open");
            w.bool(*open);
            w.key("derivative_sign");
            w.int(i128::from(*derivative_sign));
        }
        OptCertificate::Pinned => {}
        OptCertificate::Refined {
            iterations,
            grad_norm,
        } => {
            w.key("iterations");
            w.uint(u64::from(*iterations));
            w.key("grad_norm");
            w.float(*grad_norm);
        }
    }
    w.end_object();
    w.end_object();
    Ok((w.finish(), certified))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_session::SessionOptions;

    /// A one-shot session with an explicit thread count and point cap.
    fn sess(net: &tpn_net::TimedPetriNet, threads: usize, max_points: u64) -> Session {
        Session::new(
            net.clone(),
            SessionOptions::new()
                .threads(threads)
                .max_points(max_points),
        )
    }

    const CONFLICT: &str = "net duel\nplace p init 1\n\
        trans succeed in p out p firing 1 weight 3\n\
        trans retry in p out p firing 2 weight 1";

    fn spec(text: &str) -> OptimizeSpec {
        OptimizeSpec::from_json(&Json::parse(text).unwrap()).unwrap()
    }

    #[test]
    fn spec_parses_and_canonicalises_with_defaults() {
        let s = spec(
            r#"{"target":"throughput:succeed","box":[{"symbol":"F(retry)","from":"1","to":"8"}]}"#,
        );
        assert_eq!(s.goal, OptGoal::Maximize);
        assert_eq!(s.seed_points, DEFAULT_SEED_POINTS);
        assert_eq!(s.tolerance, None);
        let canon = s.canonical();
        assert_eq!(
            canon,
            r#"{"target":"throughput:succeed","goal":"max","box":[{"symbol":"F(retry)","from":"1","to":"8"}],"seed_points":4096,"tolerance":null}"#
        );
        // defaults materialise: an explicit goal hashes identically
        let s2 = spec(
            r#"{"target":"throughput:succeed","goal":"max","box":[{"symbol":"F(retry)","from":"1","to":"8"}]}"#,
        );
        assert_eq!(spec_hash(&canon), spec_hash(&s2.canonical()));
        let s3 = spec(
            r#"{"target":"throughput:succeed","goal":"min","box":[{"symbol":"F(retry)","from":"1","to":"8"}]}"#,
        );
        assert_ne!(spec_hash(&canon), spec_hash(&s3.canonical()));
    }

    #[test]
    fn spec_rejects_malformed_requests() {
        for (doc, why) in [
            (r#"{"box":[]}"#, "missing target"),
            (r#"{"target":"cycle_time","box":[]}"#, "empty box"),
            (
                r#"{"target":"cycle_time","box":[{"symbol":"F(x)","from":"1","to":"2"}],"surprise":1}"#,
                "unknown member",
            ),
            (
                r#"{"target":"cycle_time","goal":"best","box":[{"symbol":"F(x)","from":"1","to":"2"}]}"#,
                "bad goal",
            ),
            (
                r#"{"target":"cycle_time","box":[{"symbol":"F(x)","from":"2","to":"1"}]}"#,
                "from > to",
            ),
            (
                r#"{"target":"cycle_time","box":[{"symbol":"F(x)","from":"0","to":"1"}]}"#,
                "non-positive from",
            ),
            (
                r#"{"target":"cycle_time","box":[{"symbol":"F(x)","from":"1","to":"2"},{"symbol":"F(x)","from":"1","to":"2"}]}"#,
                "duplicate axis",
            ),
            (
                r#"{"target":"cycle_time","box":[{"symbol":"F(x)","from":"1","to":"2"}],"seed_points":0}"#,
                "zero seed points",
            ),
            (
                r#"{"target":"cycle_time","box":[{"symbol":"F(x)","from":"1","to":"2"}],"tolerance":"-1/2"}"#,
                "negative tolerance",
            ),
        ] {
            let doc = Json::parse(doc).unwrap();
            assert!(OptimizeSpec::from_json(&doc).is_err(), "{why}");
        }
    }

    #[test]
    fn optimize_json_solves_the_conflict_net_exactly() {
        // throughput(succeed) = 3/(3 + 2·f(retry)) over f(retry):
        // strictly decreasing, so max over [1, 8] is at 1, value 3/5.
        let net = tpn_net::parse_tpn(CONFLICT).unwrap();
        let s = spec(
            r#"{"target":"throughput:succeed","box":[{"symbol":"f(retry)","from":"1","to":"8"}]}"#,
        );
        let (body, certified) = optimize_json(&sess(&net, 2, 1_000_000), &s).unwrap();
        assert!(certified, "{body}");
        assert!(body.contains(r#""engine":"exact-univariate""#), "{body}");
        assert!(body.contains(r#""point":{"f(retry)":"1"}"#), "{body}");
        assert!(body.contains(r#""value":"3/5""#), "{body}");
        assert!(
            body.contains(r#""certificate":{"kind":"boundary","end":"lower","open":false,"derivative_sign":-1}"#),
            "{body}"
        );
        // identical at any thread count (byte-for-byte)
        let (again, _) = optimize_json(&sess(&net, 7, 1_000_000), &s).unwrap();
        assert_eq!(body, again);
    }

    #[test]
    fn optimize_json_validates_against_the_net_and_limits() {
        let net = tpn_net::parse_tpn(CONFLICT).unwrap();
        // unknown box symbol
        let s = spec(
            r#"{"target":"throughput:succeed","box":[{"symbol":"F(nope)","from":"1","to":"2"}]}"#,
        );
        assert_eq!(
            optimize_json(&sess(&net, 1, 1000), &s)
                .unwrap_err()
                .status(),
            400
        );
        // unknown target
        let s = spec(
            r#"{"target":"throughput:nope","box":[{"symbol":"f(retry)","from":"1","to":"2"}]}"#,
        );
        assert_eq!(
            optimize_json(&sess(&net, 1, 1000), &s)
                .unwrap_err()
                .status(),
            400
        );
        // seed budget over the configured cap — but only where seeding
        // happens: a univariate request never builds a seed grid, so
        // the cap must not bind it…
        let s = spec(
            r#"{"target":"throughput:succeed","box":[{"symbol":"f(retry)","from":"1","to":"2"}],"seed_points":2000}"#,
        );
        assert!(optimize_json(&sess(&net, 1, 1000), &s).is_ok());
        // …while a multivariate request over the cap is a clean 400.
        let s = spec(
            r#"{"target":"throughput:succeed","box":[{"symbol":"f(retry)","from":"1","to":"2"},{"symbol":"F(succeed)","from":"1","to":"2"}],"seed_points":2000}"#,
        );
        let e = optimize_json(&sess(&net, 1, 1000), &s).unwrap_err();
        assert_eq!(e.status(), 400);
        assert!(e.to_string().contains("2000"), "{e}");
    }
}
