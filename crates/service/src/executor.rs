//! A fixed thread pool with a bounded work queue.
//!
//! The HTTP front end accepts connections on one thread and hands each
//! one to this pool; the queue bound is the server's backpressure —
//! when every worker is busy and the queue is full, [`ThreadPool::execute`]
//! *blocks the accept loop* instead of queueing unboundedly, which in
//! turn pushes the pressure into the listener's kernel backlog where
//! clients experience it as connection latency, not memory growth.
//!
//! Shutdown is cooperative: dropping the pool wakes every worker,
//! lets the queue drain, and joins the threads. Panicking jobs are
//! isolated with `catch_unwind` — the pool is fixed-size, so a dead
//! worker would never be replaced.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_cap: usize,
}

/// The pool is closed: the job was rejected because the pool is
/// shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool is shut down")
    }
}

impl std::error::Error for PoolClosed {}

/// A fixed-size worker pool over a bounded FIFO queue.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawn `threads` workers (clamped to at least 1) sharing a queue
    /// of at most `queue_cap` pending jobs (clamped to at least 1).
    pub fn new(threads: usize, queue_cap: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_cap: queue_cap.max(1),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tpn-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// Enqueue a job, blocking while the queue is full. Returns
    /// [`PoolClosed`] if the pool is (or becomes) shut down instead of
    /// accepting work that would never run.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolClosed> {
        let mut state = self.shared.state.lock().expect("pool lock");
        while state.queue.len() >= self.shared.queue_cap && !state.shutdown {
            state = self.shared.not_full.wait(state).expect("pool lock");
        }
        if state.shutdown {
            return Err(PoolClosed);
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue a job without blocking. Returns the job back as
    /// `Ok(Some(job))` when the queue is full — the epoll reactor must
    /// never block its event loop on the pool, so it keeps the request
    /// parked on the connection and pauses accepting instead.
    #[allow(clippy::type_complexity)]
    pub fn try_execute(
        &self,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<Option<Box<dyn FnOnce() + Send + 'static>>, PoolClosed> {
        let mut state = self.shared.state.lock().expect("pool lock");
        if state.shutdown {
            return Err(PoolClosed);
        }
        if state.queue.len() >= self.shared.queue_cap {
            return Ok(Some(Box::new(job)));
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(None)
    }

    /// Number of queued (not yet running) jobs right now.
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool lock").queue.len()
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maximum number of queued (not yet running) jobs.
    pub fn queue_cap(&self) -> usize {
        self.shared.queue_cap
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    shared.not_full.notify_one();
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.not_empty.wait(state).expect("pool lock");
            }
        };
        match job {
            // A panicking job must not kill the worker: the pool is
            // fixed-size and never respawns threads, so without this a
            // request that trips a panic (e.g. exact-arithmetic
            // overflow deep in an analysis pipeline) would permanently
            // shrink the pool until the daemon stops serving.
            Some(job) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_every_job() {
        let pool = ThreadPool::new(3, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        drop(pool); // drains the queue and joins
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn bounded_queue_applies_backpressure_then_drains() {
        // One worker blocked on a slow job, capacity 1: the third submit
        // must wait until the worker frees a slot — but everything still
        // completes.
        let pool = ThreadPool::new(1, 1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(20));
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        // One worker; the panicking job must not shrink the pool.
        let pool = ThreadPool::new(1, 4);
        pool.execute(|| panic!("hostile request")).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 3, "worker survived the panic");
    }

    #[test]
    fn clamps_degenerate_sizes() {
        let pool = ThreadPool::new(0, 0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.queue_cap(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
