//! The shared identity of request specifications.
//!
//! Every spec-carrying request kind (`sweep`, `optimize`, `whatif`)
//! caches its results under a 128-bit fingerprint of a **canonical
//! rendering** — a normalised JSON document in which member order,
//! defaults and rational formatting are fixed, so two textually
//! different requests asking for the same thing share a cache line.
//! Before this module each spec type carried its own rendering/hashing
//! pair; [`Spec`] is the one trait they all implement, and
//! [`spec_hash`] the one fingerprint function.

/// A request specification with a canonical rendering and a derived
/// 128-bit fingerprint.
///
/// Implementors only provide [`Spec::canonical`]; the hash is always
/// [`spec_hash`] of that rendering, so the cache key can never drift
/// from the rendering it addresses.
pub trait Spec {
    /// The canonical JSON rendering: member order, defaults and
    /// rational formatting normalised. Equal canonical strings ⇔ equal
    /// requests.
    fn canonical(&self) -> String;

    /// The 128-bit fingerprint of the canonical rendering — the `spec`
    /// half of the request's cache key.
    fn hash(&self) -> u128 {
        spec_hash(&self.canonical())
    }
}

/// 128-bit fingerprint of a canonical spec rendering: two
/// independently seeded FNV-1a lanes, the same construction as
/// [`tpn_net::NetDigest`] and with the same threat model (accidental
/// collisions only; the cache trusts its clients).
pub fn spec_hash(canonical: &str) -> u128 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    const LANE2_SEED: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
    let mut lanes = [FNV_OFFSET, LANE2_SEED];
    for lane in &mut lanes {
        for b in canonical.bytes() {
            *lane = (*lane ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        // Differentiate the lanes' mixing, not just their seeds.
        *lane = lane.wrapping_mul(FNV_PRIME) ^ canonical.len() as u64;
    }
    (u128::from(lanes[0]) << 64) | u128::from(lanes[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = spec_hash("{\"targets\":[\"cycle_time\"]}");
        assert_eq!(a, spec_hash("{\"targets\":[\"cycle_time\"]}"));
        assert_ne!(a, spec_hash("{\"targets\":[\"cycle_time\"] }"));
        // both lanes carry entropy
        assert_ne!(a >> 64, a & u128::from(u64::MAX));
    }

    #[test]
    fn trait_hash_is_spec_hash_of_canonical() {
        struct Fixed;
        impl Spec for Fixed {
            fn canonical(&self) -> String {
                "{\"x\":1}".to_string()
            }
        }
        assert_eq!(Fixed.hash(), spec_hash("{\"x\":1}"));
    }
}
