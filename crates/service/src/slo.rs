//! The service's SLO engine: declarative objectives per endpoint,
//! multi-window burn-rate evaluation over the retention ring, and the
//! `/healthz` + `/slo` documents.
//!
//! Objectives default onto the analysis (POST) endpoints; a `tpn
//! serve --slo <file>` JSON document tunes windows, thresholds and
//! per-endpoint objectives (including enabling objectives on the GET
//! surfaces or disabling defaulted ones). Burn rates follow the
//! Google SRE multi-window recipe: a fast window makes the signal
//! responsive, a slow window keeps one spike from paging —
//! `degraded` when either window of any objective burns past the
//! degraded threshold, `unhealthy` (HTTP 503) only when an
//! objective's fast **and** slow windows both burn past the
//! unhealthy threshold.

use tpn_obs::series::{Frame, SeriesRing};
use tpn_obs::slo::{Health, Objective, WindowBurn};

use crate::history::{endpoint_error_col, endpoint_hist_col};
use crate::json::JsonWriter;
use crate::jsonval::Json;
use crate::metrics::{Endpoint, ENDPOINTS};

/// The default objective applied to every analysis endpoint: p99
/// under 250ms, at most 1% server errors.
pub const DEFAULT_OBJECTIVE: Objective = Objective {
    latency_ns: 250_000_000,
    latency_target: 0.99,
    error_target: 0.01,
};

/// Declarative SLO policy: windows, burn thresholds, and objectives.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Fast burn window, seconds (default 300 — 5 minutes).
    pub fast_window_s: u64,
    /// Slow burn window, seconds (default 3600 — 1 hour).
    pub slow_window_s: u64,
    /// Either window at or past this burn rate degrades health
    /// (default 6.0, the SRE workbook's ticket threshold).
    pub degraded_burn: f64,
    /// Both windows at or past this burn rate is unhealthy
    /// (default 14.4, the workbook's page threshold).
    pub unhealthy_burn: f64,
    /// The objective analysis endpoints get unless overridden.
    pub default_objective: Objective,
    /// Per-endpoint overrides: `Some` replaces (or enables on a GET
    /// surface), `None` disables the objective entirely.
    pub overrides: Vec<(Endpoint, Option<Objective>)>,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            fast_window_s: 300,
            slow_window_s: 3_600,
            degraded_burn: 6.0,
            unhealthy_burn: 14.4,
            default_objective: DEFAULT_OBJECTIVE,
            overrides: Vec::new(),
        }
    }
}

impl SloConfig {
    /// The effective objective of one endpoint.
    pub fn objective_for(&self, endpoint: Endpoint) -> Option<Objective> {
        if let Some((_, o)) = self.overrides.iter().rev().find(|(e, _)| *e == endpoint) {
            return *o;
        }
        endpoint.is_analysis().then_some(self.default_objective)
    }

    /// Parse an override document (`tpn serve --slo <file>`):
    ///
    /// ```json
    /// {
    ///   "fast_window_s": 300, "slow_window_s": 3600,
    ///   "degraded_burn": 6.0, "unhealthy_burn": 14.4,
    ///   "default": {"latency_ms": 250, "latency_target": 0.99, "error_target": 0.01},
    ///   "endpoints": {
    ///     "analyze": {"latency_ms": 50},
    ///     "stats": {"latency_ms": 10, "latency_target": 0.999},
    ///     "sweep": {"enabled": false}
    ///   }
    /// }
    /// ```
    ///
    /// Every member is optional and merges onto the defaults; endpoint
    /// objects merge onto the (possibly overridden) default objective,
    /// and `"enabled": false` disables an endpoint's objective.
    pub fn from_json(text: &str) -> Result<SloConfig, String> {
        let doc = Json::parse(text).map_err(|e| format!("slo config: {e}"))?;
        let mut cfg = SloConfig::default();
        if let Some(v) = doc.get("fast_window_s") {
            cfg.fast_window_s = parse_u64(v, "fast_window_s")?;
        }
        if let Some(v) = doc.get("slow_window_s") {
            cfg.slow_window_s = parse_u64(v, "slow_window_s")?;
        }
        if cfg.fast_window_s == 0 || cfg.fast_window_s > cfg.slow_window_s {
            return Err(format!(
                "slo config: fast_window_s {} must be in 1..=slow_window_s {}",
                cfg.fast_window_s, cfg.slow_window_s
            ));
        }
        if let Some(v) = doc.get("degraded_burn") {
            cfg.degraded_burn = parse_f64(v, "degraded_burn")?;
        }
        if let Some(v) = doc.get("unhealthy_burn") {
            cfg.unhealthy_burn = parse_f64(v, "unhealthy_burn")?;
        }
        // `is_nan` guards are explicit because `NaN <= 0.0` is false.
        if cfg.degraded_burn.is_nan()
            || cfg.degraded_burn <= 0.0
            || cfg.degraded_burn > cfg.unhealthy_burn
        {
            return Err(format!(
                "slo config: degraded_burn {} must be in (0, unhealthy_burn {}]",
                cfg.degraded_burn, cfg.unhealthy_burn
            ));
        }
        if let Some(v) = doc.get("default") {
            cfg.default_objective = parse_objective(v, cfg.default_objective, "default")?;
        }
        if let Some(endpoints) = doc.get("endpoints") {
            let members = endpoints
                .as_obj()
                .ok_or_else(|| "slo config: \"endpoints\" must be an object".to_string())?;
            for (name, v) in members {
                let endpoint = Endpoint::by_name(name)
                    .ok_or_else(|| format!("slo config: unknown endpoint {name:?}"))?;
                let enabled = v.get("enabled").and_then(Json::as_bool).unwrap_or(true);
                let objective = if enabled {
                    Some(parse_objective(v, cfg.default_objective, name)?)
                } else {
                    None
                };
                cfg.overrides.push((endpoint, objective));
            }
        }
        Ok(cfg)
    }
}

fn parse_u64(v: &Json, what: &str) -> Result<u64, String> {
    v.as_num()
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("slo config: {what} must be a non-negative integer"))
}

fn parse_f64(v: &Json, what: &str) -> Result<f64, String> {
    v.as_num()
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("slo config: {what} must be a number"))
}

/// Strictly inside (0, 1); false for NaN.
fn in_unit_interval(x: f64) -> bool {
    x > 0.0 && x < 1.0
}

/// One objective object, merging present members onto `base`.
fn parse_objective(v: &Json, base: Objective, what: &str) -> Result<Objective, String> {
    let mut o = base;
    if let Some(ms) = v.get("latency_ms") {
        let ms = parse_f64(ms, "latency_ms")?;
        if ms.is_nan() || ms <= 0.0 {
            return Err(format!("slo config: {what}.latency_ms must be positive"));
        }
        o.latency_ns = (ms * 1e6) as u64;
    }
    if let Some(t) = v.get("latency_target") {
        o.latency_target = parse_f64(t, "latency_target")?;
        if !in_unit_interval(o.latency_target) {
            return Err(format!(
                "slo config: {what}.latency_target must be in (0, 1)"
            ));
        }
    }
    if let Some(t) = v.get("error_target") {
        o.error_target = parse_f64(t, "error_target")?;
        if !in_unit_interval(o.error_target) {
            return Err(format!("slo config: {what}.error_target must be in (0, 1)"));
        }
    }
    Ok(o)
}

/// One endpoint's evaluated SLO state.
#[derive(Debug, Clone)]
pub(crate) struct EndpointSlo {
    pub endpoint: &'static str,
    pub objective: Objective,
    pub fast: WindowBurn,
    pub slow: WindowBurn,
    pub health: Health,
}

impl EndpointSlo {
    /// Which budget dimension is burning fastest — the label the
    /// `/healthz` reason carries.
    fn dimension(&self) -> &'static str {
        let latency = self.fast.latency_burn.max(self.slow.latency_burn);
        let error = self.fast.error_burn.max(self.slow.error_burn);
        if error > latency {
            "error"
        } else {
            "latency"
        }
    }
}

/// The full evaluation `/healthz` and `/slo` render.
#[derive(Debug, Clone)]
pub(crate) struct SloStatus {
    pub health: Health,
    pub endpoints: Vec<EndpointSlo>,
}

/// Evaluate every configured objective: each endpoint's fast and slow
/// windows are deltas of `now` against the ring frame at or before
/// the window start (an empty ring falls back to the since-boot
/// totals, i.e. a zero baseline).
pub(crate) fn evaluate(config: &SloConfig, ring: &SeriesRing, now: &Frame) -> SloStatus {
    let fast_start = ring.at_or_before(now.unix_ms.saturating_sub(config.fast_window_s * 1_000));
    let slow_start = ring.at_or_before(now.unix_ms.saturating_sub(config.slow_window_s * 1_000));
    let mut endpoints = Vec::new();
    let mut health = Health::Ok;
    for (i, endpoint) in ENDPOINTS.iter().enumerate() {
        let Some(objective) = config.objective_for(*endpoint) else {
            continue;
        };
        let fast = window_burn(&objective, now, fast_start.as_ref(), i);
        let slow = window_burn(&objective, now, slow_start.as_ref(), i);
        let graded = Health::grade(&fast, &slow, config.degraded_burn, config.unhealthy_burn);
        health = health.max(graded);
        endpoints.push(EndpointSlo {
            endpoint: endpoint.name(),
            objective,
            fast,
            slow,
            health: graded,
        });
    }
    SloStatus { health, endpoints }
}

fn window_burn(
    objective: &Objective,
    now: &Frame,
    start: Option<&Frame>,
    endpoint: usize,
) -> WindowBurn {
    let hist = endpoint_hist_col(endpoint);
    let err = endpoint_error_col(endpoint);
    match start {
        Some(s) => WindowBurn::evaluate(
            objective,
            &now.hist_delta(s, hist),
            now.counter_delta(s, err),
        ),
        None => WindowBurn::evaluate(objective, &now.hists[hist], now.counters[err]),
    }
}

/// The `/healthz` document. The `ok` body is byte-stable
/// (`{"status":"ok"}`, the pre-SLO liveness reply); `degraded` and
/// `unhealthy` add machine-readable reasons, and `unhealthy` rides on
/// HTTP 503 so load balancers can act without parsing.
pub(crate) fn healthz_json(status: &SloStatus) -> (u16, String) {
    if status.health == Health::Ok {
        return (200, r#"{"status":"ok"}"#.to_string());
    }
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("status");
    w.string(status.health.as_str());
    w.key("reasons");
    w.begin_array();
    for e in &status.endpoints {
        if e.health == Health::Ok {
            continue;
        }
        w.begin_object();
        w.key("endpoint");
        w.string(e.endpoint);
        w.key("health");
        w.string(e.health.as_str());
        w.key("dimension");
        w.string(e.dimension());
        w.key("fast_burn");
        w.float(e.fast.worst_burn());
        w.key("slow_burn");
        w.float(e.slow.worst_burn());
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let code = if status.health == Health::Unhealthy {
        503
    } else {
        200
    };
    (code, w.finish())
}

/// The `GET /slo` document: policy, per-endpoint objectives and the
/// current windowed burns.
pub(crate) fn slo_json(config: &SloConfig, status: &SloStatus) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("status");
    w.string(status.health.as_str());
    w.key("fast_window_s");
    w.uint(config.fast_window_s);
    w.key("slow_window_s");
    w.uint(config.slow_window_s);
    w.key("degraded_burn");
    w.float(config.degraded_burn);
    w.key("unhealthy_burn");
    w.float(config.unhealthy_burn);
    w.key("endpoints");
    w.begin_array();
    for e in &status.endpoints {
        w.begin_object();
        w.key("endpoint");
        w.string(e.endpoint);
        w.key("health");
        w.string(e.health.as_str());
        w.key("objective");
        w.begin_object();
        w.key("latency_ms");
        w.float(e.objective.latency_ns as f64 / 1e6);
        w.key("latency_target");
        w.float(e.objective.latency_target);
        w.key("error_target");
        w.float(e.objective.error_target);
        w.end_object();
        for (key, burn) in [("fast", &e.fast), ("slow", &e.slow)] {
            w.key(key);
            w.begin_object();
            w.key("requests");
            w.uint(burn.total);
            w.key("slow_requests");
            w.uint(burn.slow);
            w.key("errors");
            w.uint(burn.errors);
            w.key("latency_burn");
            w.float(burn.latency_burn);
            w.key("error_burn");
            w.float(burn.error_burn);
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history;
    use crate::metrics::{ServiceMetrics, StatsSnapshot};

    #[test]
    fn defaults_cover_analysis_endpoints_only() {
        let cfg = SloConfig::default();
        assert_eq!(
            cfg.objective_for(Endpoint::Analyze),
            Some(DEFAULT_OBJECTIVE)
        );
        assert_eq!(cfg.objective_for(Endpoint::Whatif), Some(DEFAULT_OBJECTIVE));
        assert_eq!(cfg.objective_for(Endpoint::Stats), None);
        assert_eq!(cfg.objective_for(Endpoint::Metrics), None);
    }

    #[test]
    fn config_parses_and_merges_overrides() {
        let cfg = SloConfig::from_json(
            r#"{
                "fast_window_s": 60,
                "degraded_burn": 2.0, "unhealthy_burn": 10.0,
                "default": {"latency_ms": 100},
                "endpoints": {
                    "analyze": {"latency_ms": 5, "latency_target": 0.999},
                    "stats": {"latency_ms": 10},
                    "sweep": {"enabled": false}
                }
            }"#,
        )
        .unwrap();
        assert_eq!(cfg.fast_window_s, 60);
        assert_eq!(cfg.slow_window_s, 3_600);
        let analyze = cfg.objective_for(Endpoint::Analyze).unwrap();
        assert_eq!(analyze.latency_ns, 5_000_000);
        assert_eq!(analyze.latency_target, 0.999);
        assert_eq!(analyze.error_target, 0.01); // inherited
                                                // graph inherits the overridden default.
        assert_eq!(
            cfg.objective_for(Endpoint::Graph).unwrap().latency_ns,
            100_000_000
        );
        // stats gains an objective; sweep loses its default one.
        assert!(cfg.objective_for(Endpoint::Stats).is_some());
        assert!(cfg.objective_for(Endpoint::Sweep).is_none());
    }

    #[test]
    fn config_rejects_nonsense() {
        assert!(SloConfig::from_json("not json").is_err());
        assert!(SloConfig::from_json(r#"{"fast_window_s": 0}"#).is_err());
        assert!(SloConfig::from_json(r#"{"fast_window_s": 7200}"#).is_err());
        assert!(SloConfig::from_json(r#"{"degraded_burn": 20.0}"#).is_err());
        assert!(SloConfig::from_json(r#"{"endpoints": {"nope": {}}}"#).is_err());
        assert!(SloConfig::from_json(r#"{"default": {"latency_target": 1.5}}"#).is_err());
    }

    /// Build a frame pair exercising the burn math end to end: 100
    /// requests in the window, `slow_count` of them over the 250ms
    /// objective.
    fn status_with_slow(slow_count: u64) -> SloStatus {
        let cfg = SloConfig::default();
        let m = ServiceMetrics::new(true);
        let ring = tpn_obs::series::SeriesRing::new(history::schema(), 8);
        let base = StatsSnapshot::default();
        ring.push(&history::collect_frame(&m, &base, 1_000));
        for i in 0..100u64 {
            let ns = if i < slow_count { 1_000_000_000 } else { 1_000 };
            m.record(Endpoint::Analyze, 200, ns);
        }
        let now = history::collect_frame(&m, &base, 301_000);
        evaluate(&cfg, &ring, &now)
    }

    #[test]
    fn evaluate_grades_and_healthz_renders() {
        let ok = status_with_slow(0);
        assert_eq!(ok.health, Health::Ok);
        let (code, body) = healthz_json(&ok);
        assert_eq!((code, body.as_str()), (200, r#"{"status":"ok"}"#));

        // 50/100 over the bound: burn 50 ≥ 14.4 in both windows (both
        // window starts resolve to the same lone baseline frame).
        let hot = status_with_slow(50);
        assert_eq!(hot.health, Health::Unhealthy);
        let (code, body) = healthz_json(&hot);
        assert_eq!(code, 503);
        assert!(body.contains(r#""dimension":"latency""#), "{body}");
        let analyze = hot
            .endpoints
            .iter()
            .find(|e| e.endpoint == "analyze")
            .unwrap();
        assert_eq!(analyze.fast.total, 100);
        assert_eq!(analyze.fast.slow, 50);

        let doc = slo_json(&SloConfig::default(), &hot);
        crate::jsonval::Json::parse(&doc).expect("slo document parses");
        assert!(doc.contains(r#""status":"unhealthy""#), "{doc}");
        assert!(doc.contains(r#""latency_ms":250"#), "{doc}");
    }
}
