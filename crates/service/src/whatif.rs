//! The incremental what-if request: one base net, a batch of timing
//! perturbations, every analysis answered from one shared lift.
//!
//! A what-if request names a list of plain analyses (`requests`,
//! default `["analyze"]`) and a batch of **timing perturbations** —
//! partial [`TimingAssignment`]s over the
//! base net's `E(t)`/`F(t)`/`f(t)` attributes. The service materialises
//! the base [`Session`](tpn_session::Session)'s full symbolic lift
//! **once** and answers every perturbation by substituting its values
//! into the lifted skeleton ([`Session::retimed`](tpn_session::Session::retimed)):
//! no reachability-graph rebuild, no recompilation, and — because the
//! whole pipeline is exact rational arithmetic — every re-timed body is
//! **byte-identical** to what a cold analysis of the perturbed net
//! would produce.
//!
//! ## Spec schema
//!
//! ```json
//! {
//!   "requests": ["analyze", "correctness"],
//!   "perturbations": [
//!     {"E(t3)": "500"},
//!     {"E(t3)": "2000", "F(t2)": "3/2"}
//!   ]
//! }
//! ```
//!
//! `requests` may name `analyze`, `graph`, `correctness` and
//! `invariants` (the exact, structure-derived analyses; `simulate`
//! re-runs from scratch by construction and `sweep`/`optimize` already
//! batch internally). The HTTP request body is this object plus a
//! `"net"` member carrying the `.tpn` text.
//!
//! ## Failure isolation and caching
//!
//! Each perturbation succeeds or fails alone: an unknown attribute or a
//! point outside the lift's recorded validity region yields that
//! entry's `{"code": …, "message": …}` error object (`bad_request` /
//! `out_of_region`) without failing its siblings. Successful entries
//! are cached under `(structural digest, timing hash, requests hash)` —
//! see [`RequestKind::Whatif`] — so two
//! batches over structurally identical nets share every perturbation
//! they have in common, whatever else each batch asks for.

use tpn_net::TimingAssignment;

use crate::analysis::RequestKind;
use crate::json::JsonWriter;
use crate::jsonval::Json;
use crate::spec::Spec;
use crate::sweep::{bad, rational_value};
use crate::ServiceError;

/// Most perturbations one what-if batch may carry.
pub const MAX_PERTURBATIONS: usize = 256;

/// Most analyses one what-if batch may run per perturbation.
pub const MAX_WHATIF_REQUESTS: usize = 8;

/// The analysis kinds a what-if batch may request.
const ALLOWED_REQUESTS: [(&str, RequestKind); 4] = [
    ("analyze", RequestKind::Analyze),
    ("graph", RequestKind::Graph),
    ("correctness", RequestKind::Correctness),
    ("invariants", RequestKind::Invariants),
];

/// A parsed, validated what-if specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhatifSpec {
    /// The analyses to run per perturbation, in request order.
    pub requests: Vec<RequestKind>,
    /// The timing perturbations, in request order. Each is a *partial*
    /// assignment: unnamed attributes keep their base values.
    pub perturbations: Vec<TimingAssignment>,
}

impl WhatifSpec {
    /// Parse a spec from a JSON object. A `"net"` member is ignored
    /// here (the HTTP endpoint carries the net text in-body); any other
    /// unknown member is rejected so typos cannot silently change the
    /// request's meaning.
    pub fn from_json(doc: &Json) -> Result<WhatifSpec, ServiceError> {
        let members = doc
            .as_obj()
            .ok_or_else(|| bad(format!("spec must be an object, got {}", doc.kind())))?;
        for (k, _) in members {
            if !matches!(k.as_str(), "net" | "requests" | "perturbations") {
                return Err(bad(format!("unknown spec member {k:?}")));
            }
        }
        let requests = match doc.get("requests") {
            None => vec![RequestKind::Analyze],
            Some(json) => {
                let names = json
                    .as_arr()
                    .ok_or_else(|| bad("\"requests\" must be an array of kind names"))?;
                if names.is_empty() {
                    return Err(bad("\"requests\" must not be empty"));
                }
                if names.len() > MAX_WHATIF_REQUESTS {
                    return Err(bad(format!(
                        "more than {MAX_WHATIF_REQUESTS} requests per perturbation"
                    )));
                }
                let mut kinds = Vec::with_capacity(names.len());
                for n in names {
                    let name = n
                        .as_str()
                        .ok_or_else(|| bad("each request must be a kind name string"))?;
                    let kind = ALLOWED_REQUESTS
                        .iter()
                        .find(|(k, _)| *k == name)
                        .map(|(_, kind)| *kind)
                        .ok_or_else(|| {
                            bad(format!(
                                "unknown whatif request kind {name:?} (expected analyze, \
                                 graph, correctness or invariants)"
                            ))
                        })?;
                    if kinds.contains(&kind) {
                        return Err(bad(format!("duplicate request kind {name:?}")));
                    }
                    kinds.push(kind);
                }
                kinds
            }
        };
        let perturbations_json = doc
            .get("perturbations")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("spec needs a \"perturbations\" array"))?;
        if perturbations_json.is_empty() {
            return Err(bad("\"perturbations\" must not be empty"));
        }
        if perturbations_json.len() > MAX_PERTURBATIONS {
            return Err(bad(format!("more than {MAX_PERTURBATIONS} perturbations")));
        }
        let mut perturbations = Vec::with_capacity(perturbations_json.len());
        for p in perturbations_json {
            let entries = p.as_obj().ok_or_else(|| {
                bad(format!(
                    "each perturbation must be an object mapping attribute names to \
                     values, got {}",
                    p.kind()
                ))
            })?;
            if entries.is_empty() {
                return Err(bad("a perturbation must re-time at least one attribute"));
            }
            let mut assignment = TimingAssignment::new();
            for (attr, value) in entries {
                assignment.set(attr.clone(), rational_value(value, attr)?);
            }
            perturbations.push(assignment);
        }
        Ok(WhatifSpec {
            requests,
            perturbations,
        })
    }

    /// The canonical one-line JSON rendering: fixed member order,
    /// defaults materialised, perturbation entries in attribute-name
    /// order, rationals in reduced `n/d` form. Two specs with the same
    /// canonical form are the same request.
    pub fn canonical(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        self.write_requests(&mut w);
        w.key("perturbations");
        w.begin_array();
        for p in &self.perturbations {
            w.begin_object();
            for (attr, value) in p.iter() {
                w.key(attr);
                w.rational(value);
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// The canonical rendering of the `requests` half alone. Its
    /// [`spec_hash`](crate::spec::spec_hash) is the `spec` component of
    /// each perturbation's cache key: entries are addressed by *what is
    /// asked of which timing point*, never by which batch asked — two
    /// batches with different perturbation lists share every common
    /// point.
    pub fn requests_canonical(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        self.write_requests(&mut w);
        w.end_object();
        w.finish()
    }

    fn write_requests(&self, w: &mut JsonWriter) {
        w.key("requests");
        w.begin_array();
        for r in &self.requests {
            w.string(r.name());
        }
        w.end_array();
    }
}

impl Spec for WhatifSpec {
    fn canonical(&self) -> String {
        WhatifSpec::canonical(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_rational::Rational;

    #[test]
    fn spec_parses_with_defaults_and_canonicalises() {
        let doc =
            Json::parse(r#"{"perturbations":[{"E(t3)":"500"},{"F(t2)":1.5,"E(t3)":"2000"}]}"#)
                .unwrap();
        let spec = WhatifSpec::from_json(&doc).unwrap();
        assert_eq!(spec.requests, vec![RequestKind::Analyze]);
        assert_eq!(spec.perturbations.len(), 2);
        assert_eq!(
            spec.perturbations[1].get("F(t2)"),
            Some(&Rational::new(3, 2))
        );
        assert_eq!(
            spec.canonical(),
            r#"{"requests":["analyze"],"perturbations":[{"E(t3)":"500"},{"E(t3)":"2000","F(t2)":"3/2"}]}"#
        );
        assert_eq!(spec.requests_canonical(), r#"{"requests":["analyze"]}"#);
    }

    #[test]
    fn canonical_form_is_order_independent() {
        let a = WhatifSpec::from_json(
            &Json::parse(r#"{"perturbations":[{"E(t3)":"500","F(t2)":"2"}]}"#).unwrap(),
        )
        .unwrap();
        let b = WhatifSpec::from_json(
            &Json::parse(r#"{"perturbations":[{"F(t2)":"4/2","E(t3)":"500.0"}]}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(Spec::hash(&a), Spec::hash(&b));
    }

    #[test]
    fn spec_rejects_malformed_documents() {
        for (body, why) in [
            (r#"[]"#, "not an object"),
            (
                r#"{"perturbations":[{"E(t3)":"1"}],"extra":1}"#,
                "unknown member",
            ),
            (r#"{"perturbations":[]}"#, "empty perturbations"),
            (
                r#"{"requests":[],"perturbations":[{"E(t3)":"1"}]}"#,
                "empty requests",
            ),
            (
                r#"{"requests":["simulate"],"perturbations":[{"E(t3)":"1"}]}"#,
                "simulate is not incremental",
            ),
            (
                r#"{"requests":["analyze","analyze"],"perturbations":[{"E(t3)":"1"}]}"#,
                "duplicate kind",
            ),
            (r#"{"perturbations":[{}]}"#, "empty perturbation"),
            (r#"{"perturbations":[{"E(t3)":true}]}"#, "non-numeric value"),
            (r#"{"perturbations":["E(t3)"]}"#, "non-object perturbation"),
        ] {
            let doc = Json::parse(body).unwrap();
            let e = WhatifSpec::from_json(&doc).unwrap_err();
            assert_eq!(e.status(), 400, "{why}");
            assert_eq!(e.code(), "bad_request", "{why}");
        }
    }

    #[test]
    fn caps_are_enforced() {
        let many: Vec<String> = (0..=MAX_PERTURBATIONS)
            .map(|i| format!(r#"{{"E(t{i})":"1"}}"#))
            .collect();
        let doc = Json::parse(&format!(r#"{{"perturbations":[{}]}}"#, many.join(","))).unwrap();
        assert!(WhatifSpec::from_json(&doc).is_err());
    }
}
