//! Request kinds and their JSON renderings.
//!
//! [`run_with_session`] executes one analysis request against a
//! [`Session`] and renders the result as compact JSON. It is the
//! *only* producer of analysis JSON in the workspace: the HTTP
//! endpoints (legacy and `/v1`), `tpn batch` and the cache all go
//! through it, so a cached response is byte-identical to a freshly
//! computed one, and the CLI's JSON matches the server's. [`run`] is
//! the sessionless convenience wrapper (one-shot session, default
//! options).

use std::fmt;

use tpn_net::{invariant, PlaceId, TimedPetriNet, TransId};
use tpn_session::{Session, SessionOptions};
use tpn_sim::{simulate, SimOptions};

use crate::json::JsonWriter;

/// Default event budget for `simulate` when the request does not name
/// one — shared by the HTTP query parser, `tpn simulate` and
/// `tpn batch` so the surfaces can never drift apart.
pub const DEFAULT_SIM_EVENTS: u64 = 1_000_000;

/// Default PRNG seed for `simulate` (see [`DEFAULT_SIM_EVENTS`]).
pub const DEFAULT_SIM_SEED: u64 = 0x5EED;

/// The analysis a request asks for. Together with the net's content
/// digest this is the cache key: every variant (and every option value)
/// addresses a distinct result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Full pipeline: TRG → decision graph → rates → throughputs.
    Analyze,
    /// Timed reachability graph summary and state table.
    Graph,
    /// Deadlock/safeness/liveness/reversibility report.
    Correctness,
    /// P- and T-semiflows.
    Invariants,
    /// Monte-Carlo simulation with an explicit budget and seed (both are
    /// part of the cache key — runs are deterministic given the seed).
    Simulate {
        /// Maximum number of discrete events to process.
        events: u64,
        /// PRNG seed.
        seed: u64,
    },
    /// A compiled parameter sweep. The variant carries only the 128-bit
    /// [`spec_hash`](crate::sweep::spec_hash) of the canonical grid
    /// spec — enough to address the cache; the spec itself travels with
    /// the request and is handled by
    /// [`Service::respond_sweep`](crate::Service::respond_sweep), not
    /// by [`run`].
    Sweep {
        /// Fingerprint of the canonical spec rendering.
        spec: u128,
    },
    /// A parameter-synthesis request. Like [`RequestKind::Sweep`], the
    /// variant carries only the canonical spec's fingerprint; the spec
    /// travels with the request and is handled by
    /// [`Service::respond_optimize`](crate::Service::respond_optimize).
    Optimize {
        /// Fingerprint of the canonical spec rendering.
        spec: u128,
    },
    /// One perturbation entry of an incremental what-if batch. Unlike
    /// every other variant this one is keyed by the net's **structural**
    /// digest, not its full digest: `timing` pins the perturbed net's
    /// complete [`tpn_net::TimingAssignment`] and `spec` the analysis
    /// list, so any batch perturbing a structurally identical net to
    /// the same timing point shares the cache line. Handled by
    /// [`Service::respond_whatif`](crate::Service::respond_whatif).
    Whatif {
        /// [`tpn_net::TimingAssignment::hash`] of the perturbed net's
        /// total timing assignment.
        timing: u128,
        /// Fingerprint of the canonical analysis-list rendering.
        spec: u128,
    },
}

impl RequestKind {
    /// The endpoint/subcommand name of this request kind.
    pub fn name(&self) -> &'static str {
        match self {
            RequestKind::Analyze => "analyze",
            RequestKind::Graph => "graph",
            RequestKind::Correctness => "correctness",
            RequestKind::Invariants => "invariants",
            RequestKind::Simulate { .. } => "simulate",
            RequestKind::Sweep { .. } => "sweep",
            RequestKind::Optimize { .. } => "optimize",
            RequestKind::Whatif { .. } => "whatif",
        }
    }
}

/// Why a request could not be served.
///
/// Every variant carries a stable machine-readable [`code`] and an HTTP
/// [`status`](ServiceError::status); the full mapping (shared by every
/// endpoint and documented in the README):
///
/// | code | status | meaning |
/// |---|---|---|
/// | `parse` | 400 | the `.tpn` text does not parse |
/// | `bad_request` | 400 | malformed request: body, spec, query, route |
/// | `analysis` | 422 | the net parses but the analysis fails |
/// | `out_of_region` | 422 | a what-if perturbation leaves the lift's validity region |
///
/// Legacy routes render errors as `{"error": "<code prefix>: <message>"}`
/// (pinned by golden captures); `/v1` and `/whatif` render the
/// structured `{"code": …, "message": …}` object.
///
/// [`code`]: ServiceError::code
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request body is not a valid `.tpn` document (HTTP 400).
    Parse(String),
    /// The net parsed but the analysis failed, e.g. no steady-state
    /// cycle for `analyze` (HTTP 422).
    Analysis(String),
    /// The request itself is malformed: bad query parameter, bad route,
    /// oversized or non-UTF-8 body (HTTP 400).
    BadRequest(String),
    /// A what-if perturbation leaves the validity region of the shared
    /// lifted skeleton: the incremental machinery provably cannot
    /// answer it, but a cold analysis of the perturbed net could
    /// (HTTP 422).
    OutOfRegion(String),
}

impl ServiceError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServiceError::Parse(_) | ServiceError::BadRequest(_) => 400,
            ServiceError::Analysis(_) | ServiceError::OutOfRegion(_) => 422,
        }
    }

    /// The stable machine-readable error code (the `"code"` member of
    /// structured error bodies).
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Parse(_) => "parse",
            ServiceError::Analysis(_) => "analysis",
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::OutOfRegion(_) => "out_of_region",
        }
    }

    /// The bare human-readable message, without the legacy
    /// `Display` prefix (the `"message"` member of structured error
    /// bodies).
    pub fn message(&self) -> &str {
        match self {
            ServiceError::Parse(m)
            | ServiceError::Analysis(m)
            | ServiceError::BadRequest(m)
            | ServiceError::OutOfRegion(m) => m,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Parse(m) => write!(f, "parse error: {m}"),
            ServiceError::Analysis(m) => write!(f, "analysis error: {m}"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::OutOfRegion(m) => write!(f, "out of region: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Execute `kind` against a one-shot default-options [`Session`] over
/// `net`. Prefer [`run_with_session`] when serving several requests
/// for the same net — that is the whole point of sessions.
pub fn run(net: &TimedPetriNet, kind: RequestKind) -> Result<String, ServiceError> {
    run_with_session(&Session::new(net.clone(), SessionOptions::new()), kind)
}

/// Execute `kind` against `session` and render the result as one line
/// of compact JSON. Deterministic: identical nets (by content digest)
/// and identical request kinds produce byte-identical documents, which
/// is what makes the result cache safe — and the pipeline artifacts
/// (TRG, decision graph, rates) are demanded through the session, so
/// consecutive requests against the same net share one derivation.
pub fn run_with_session(session: &Session, kind: RequestKind) -> Result<String, ServiceError> {
    let _span = tpn_obs::trace::span("render");
    match kind {
        RequestKind::Analyze => analyze_json(session),
        RequestKind::Graph => graph_json(session),
        RequestKind::Correctness => correctness_json(session),
        RequestKind::Invariants => Ok(invariants_json(session.net())),
        RequestKind::Simulate { events, seed } => simulate_json(session.net(), events, seed),
        // Sweeps and optimizations need their full spec, which only the
        // hash of travels in the kind; Service::respond_sweep and
        // Service::respond_optimize are the entry points.
        RequestKind::Sweep { .. } => Err(ServiceError::BadRequest(
            "sweep requests carry a grid spec; POST /sweep with a JSON body".to_string(),
        )),
        RequestKind::Optimize { .. } => Err(ServiceError::BadRequest(
            "optimize requests carry a spec; POST /optimize with a JSON body".to_string(),
        )),
        RequestKind::Whatif { .. } => Err(ServiceError::BadRequest(
            "whatif requests carry a perturbation spec; POST /whatif with a JSON body".to_string(),
        )),
    }
}

fn err(e: impl fmt::Display) -> ServiceError {
    ServiceError::Analysis(e.to_string())
}

/// Common document header: kind, net name, content digest.
fn header(w: &mut JsonWriter, net: &TimedPetriNet, kind: RequestKind) {
    w.begin_object();
    w.key("kind");
    w.string(kind.name());
    w.key("net");
    w.string(net.name());
    w.key("digest");
    w.string(&net.digest().to_hex());
}

fn analyze_json(session: &Session) -> Result<String, ServiceError> {
    let net = session.net();
    let trg = session.trg().map_err(err)?;
    let dg = session.decision_graph().map_err(err)?;
    let perf = session.performance().map_err(err)?;

    let mut w = JsonWriter::new();
    header(&mut w, net, RequestKind::Analyze);
    w.key("states");
    w.uint(trg.num_states() as u64);
    w.key("decision_nodes");
    w.uint(dg.num_nodes() as u64);
    w.key("reference_edge");
    w.uint(0);
    w.key("edges");
    w.begin_array();
    for (i, e) in dg.edges().iter().enumerate() {
        w.begin_object();
        w.key("from");
        w.string(&dg.nodes()[e.from].to_string());
        w.key("to");
        w.string(&dg.nodes()[e.to].to_string());
        w.key("prob");
        w.rational(&e.prob);
        w.key("delay");
        w.rational(&e.delay);
        w.key("rate");
        w.rational(perf.rates().rate(i));
        w.key("weight");
        w.rational(&perf.weights()[i]);
        w.key("fires");
        w.begin_array();
        for t in &e.fired {
            w.string(net.transition(*t).name());
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("total_weight");
    w.rational(perf.total_weight());
    w.key("throughput");
    w.begin_array();
    for t in net.transitions() {
        let th = perf.throughput(&dg, t);
        w.begin_object();
        w.key("transition");
        w.string(net.transition(t).name());
        w.key("exact");
        w.rational(&th);
        w.key("approx");
        w.fixed(th.to_f64(), 6);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    Ok(w.finish())
}

fn graph_json(session: &Session) -> Result<String, ServiceError> {
    let net = session.net();
    let trg = session.trg().map_err(err)?;
    let mut w = JsonWriter::new();
    header(&mut w, net, RequestKind::Graph);
    w.key("states");
    w.uint(trg.num_states() as u64);
    w.key("edges");
    w.uint(trg.num_edges() as u64);
    w.key("decision_states");
    w.begin_array();
    for s in trg.decision_states() {
        w.string(&s.to_string());
    }
    w.end_array();
    w.key("terminal_states");
    w.begin_array();
    for s in trg.terminal_states() {
        w.string(&s.to_string());
    }
    w.end_array();
    w.key("state_table");
    w.begin_array();
    for s in trg.state_ids() {
        w.string(
            &trg.state(s)
                .describe(|t| net.transition(t).name().to_string()),
        );
    }
    w.end_array();
    w.end_object();
    Ok(w.finish())
}

fn correctness_json(session: &Session) -> Result<String, ServiceError> {
    let net = session.net();
    let trg = session.trg().map_err(err)?;
    let report = tpn_reach::analyze(&trg, net);
    let mut w = JsonWriter::new();
    header(&mut w, net, RequestKind::Correctness);
    w.key("deadlock_free");
    w.bool(report.deadlocks.is_empty());
    w.key("deadlocks");
    w.begin_array();
    for s in &report.deadlocks {
        w.string(&s.to_string());
    }
    w.end_array();
    w.key("safe");
    w.bool(report.unsafe_states.is_empty());
    w.key("bound");
    w.uint(u64::from(report.bound));
    w.key("dead_transitions");
    w.begin_array();
    for t in &report.dead_transitions {
        w.string(net.transition(*t).name());
    }
    w.end_array();
    w.key("reversible");
    w.bool(report.reversible);
    w.key("correct");
    w.bool(report.is_correct());
    w.end_object();
    Ok(w.finish())
}

fn invariants_json(net: &TimedPetriNet) -> String {
    let mut w = JsonWriter::new();
    header(&mut w, net, RequestKind::Invariants);
    w.key("p_semiflows");
    w.begin_array();
    for f in invariant::p_semiflows(net) {
        w.begin_object();
        w.key("weights");
        w.begin_object();
        for p in f.support() {
            w.key(net.place_name(PlaceId::from_index(p)));
            w.int(f.weights[p]);
        }
        w.end_object();
        w.key("conserved");
        w.int(invariant::conserved_quantity(net, &f));
        w.end_object();
    }
    w.end_array();
    w.key("t_semiflows");
    w.begin_array();
    for f in invariant::t_semiflows(net) {
        w.begin_object();
        w.key("weights");
        w.begin_object();
        for t in f.support() {
            w.key(net.transition(TransId::from_index(t)).name());
            w.int(f.weights[t]);
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.key("structurally_bounded");
    w.bool(invariant::covered_by_p_semiflows(net));
    w.end_object();
    w.finish()
}

fn simulate_json(net: &TimedPetriNet, events: u64, seed: u64) -> Result<String, ServiceError> {
    let stats = simulate(
        net,
        &SimOptions {
            seed,
            max_events: events,
            ..SimOptions::default()
        },
    )
    .map_err(err)?;
    let mut w = JsonWriter::new();
    header(&mut w, net, RequestKind::Simulate { events, seed });
    w.key("events");
    w.uint(stats.events());
    w.key("seed");
    w.uint(seed);
    w.key("measured_time");
    w.rational(stats.measured_time());
    w.key("deadlocked");
    w.bool(stats.deadlocked());
    w.key("transitions");
    w.begin_array();
    for t in net.transitions() {
        w.begin_object();
        w.key("name");
        w.string(net.transition(t).name());
        w.key("started");
        w.uint(stats.firings(t));
        w.key("completed");
        w.uint(stats.completions(t));
        w.key("rate");
        w.fixed(stats.throughput(t), 6);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_net::parse_tpn;

    const CYCLE: &str = "net c\nplace a init 1\nplace b\n\
        trans go in a out b firing 2\ntrans back in b out a firing 3";

    #[test]
    fn analyze_renders_rates_and_throughput() {
        let net = parse_tpn(CYCLE).unwrap();
        let body = run(&net, RequestKind::Analyze).unwrap();
        assert!(
            body.starts_with(r#"{"kind":"analyze","net":"c","digest":""#),
            "{body}"
        );
        // one deterministic cycle: total weight 5, throughput 1/5
        assert!(body.contains(r#""total_weight":"5""#), "{body}");
        assert!(
            body.contains(r#""transition":"go","exact":"1/5","approx":0.200000"#),
            "{body}"
        );
    }

    #[test]
    fn graph_counts_states() {
        let net = parse_tpn(CYCLE).unwrap();
        let body = run(&net, RequestKind::Graph).unwrap();
        assert!(body.contains(r#""states":4"#), "{body}");
        assert!(body.contains(r#""decision_states":[]"#), "{body}");
    }

    #[test]
    fn correctness_verdict() {
        let net = parse_tpn(CYCLE).unwrap();
        let body = run(&net, RequestKind::Correctness).unwrap();
        assert!(body.contains(r#""correct":true"#), "{body}");
        let dead =
            parse_tpn("net d\nplace a init 1\nplace b\ntrans t in a out b firing 1").unwrap();
        let body = run(&dead, RequestKind::Correctness).unwrap();
        assert!(body.contains(r#""deadlock_free":false"#), "{body}");
    }

    #[test]
    fn invariants_lists_semiflows() {
        let net = parse_tpn(CYCLE).unwrap();
        let body = run(&net, RequestKind::Invariants).unwrap();
        assert!(
            body.contains(r#""p_semiflows":[{"weights":{"a":1,"b":1},"conserved":1}]"#),
            "{body}"
        );
        assert!(body.contains(r#""structurally_bounded":true"#), "{body}");
    }

    #[test]
    fn simulate_is_deterministic_per_seed() {
        let net = parse_tpn(CYCLE).unwrap();
        let kind = RequestKind::Simulate {
            events: 500,
            seed: 7,
        };
        let a = run(&net, kind).unwrap();
        let b = run(&net, kind).unwrap();
        assert_eq!(a, b);
        assert!(a.contains(r#""seed":7"#), "{a}");
        let c = run(
            &net,
            RequestKind::Simulate {
                events: 500,
                seed: 8,
            },
        )
        .unwrap();
        assert_ne!(a, c, "different seed, different trajectory counters");
    }

    #[test]
    fn analysis_errors_are_reported() {
        // a net that deadlocks has no steady-state cycle to analyze
        let net = parse_tpn("net d\nplace a init 1\nplace b\ntrans t in a out b firing 1").unwrap();
        let e = run(&net, RequestKind::Analyze).unwrap_err();
        assert_eq!(e.status(), 422);
        assert!(e.to_string().contains("analysis error"), "{e}");
    }
}
