//! The per-digest session cache — the first tier of the daemon's
//! two-tier cache.
//!
//! The second tier (the [`AnalysisCache`](crate::AnalysisCache)) stores
//! *final response bodies* keyed by `(digest, request kind)`. This tier
//! stores the **pipeline artifacts** behind them: one
//! [`tpn_session::Session`] per net digest, so a `/sweep` following an
//! `/analyze` of the same net re-uses the memoized TRG, lifted domain
//! and compiled program instead of re-deriving the whole chain — even
//! though their response bodies live under different cache keys.
//!
//! Every session created here shares one [`StageCounters`], which is
//! what the `/stats` endpoint's per-stage `artifact_*` counters report.
//! Eviction is least-recently-used by session count; evicting a session
//! drops its artifacts but never its already-cached response bodies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tpn_net::{NetDigest, TimedPetriNet};
use tpn_session::{Session, SessionOptions, StageCounters};

/// Counter snapshot of the session tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionCacheStats {
    /// Sessions currently held.
    pub sessions: usize,
    /// Requests that found their net's session already materialised.
    pub hits: u64,
    /// Requests that created a fresh session.
    pub misses: u64,
    /// Sessions evicted to stay within the capacity.
    pub evictions: u64,
}

struct Slot {
    session: Arc<Session>,
    last_used: u64,
}

/// An LRU-bounded map from net digest to shared [`Session`].
pub struct SessionCache {
    map: Mutex<HashMap<NetDigest, Slot>>,
    clock: AtomicU64,
    capacity: usize,
    options: SessionOptions,
    counters: Arc<StageCounters>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SessionCache {
    /// An empty cache holding at most `capacity` sessions (clamped to
    /// at least 1), creating sessions with `options` and aggregating
    /// their stage counters into one shared [`StageCounters`].
    pub fn new(capacity: usize, options: SessionOptions) -> SessionCache {
        SessionCache {
            map: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            capacity: capacity.max(1),
            options,
            counters: Arc::new(StageCounters::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The stage counters shared by every session this cache created.
    pub fn counters(&self) -> &Arc<StageCounters> {
        &self.counters
    }

    /// The session for `digest`, creating (and LRU-evicting) as
    /// needed. `net` must be the net `digest` was computed from; it is
    /// consumed only on a miss.
    pub fn session_for(&self, digest: NetDigest, net: TimedPetriNet) -> Arc<Session> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("session map lock");
        if let Some(slot) = map.get_mut(&digest) {
            slot.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&slot.session);
        }
        // Span the miss only: a hit is one map probe, below span
        // resolution, and the warm path must not pay clock reads for
        // it. A "session" span in a trace means a session was built.
        let _span = tpn_obs::trace::span("session");
        self.misses.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Session::with_counters(
            net,
            self.options.clone(),
            Arc::clone(&self.counters),
        ));
        map.insert(
            digest,
            Slot {
                session: Arc::clone(&session),
                last_used: tick,
            },
        );
        while map.len() > self.capacity {
            // In-flight users keep their Arc; only the cache's handle
            // is dropped.
            let victim = map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(d, _)| *d)
                .expect("non-empty map");
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        session
    }

    /// The session for `digest`, creating it with `build` on a miss —
    /// the what-if tier's entry point: a re-timed session is inserted
    /// under the **perturbed** net's full digest, so a later plain
    /// request for that exact net (or another batch hitting the same
    /// timing point) finds its artifacts already materialised.
    ///
    /// Unlike [`SessionCache::session_for`], `build` may do real work
    /// (a re-timing substitutes through the shared lift), so it runs
    /// **outside** the map lock; if a concurrent caller inserted the
    /// digest meanwhile, the already-cached session wins (sessions for
    /// one digest are interchangeable — same artifacts, same bytes).
    pub fn session_or_else<E>(
        &self,
        digest: NetDigest,
        build: impl FnOnce() -> Result<Session, E>,
    ) -> Result<Arc<Session>, E> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut map = self.map.lock().expect("session map lock");
            if let Some(slot) = map.get_mut(&digest) {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&slot.session));
            }
        }
        // Miss only, as in [`SessionCache::session_for`] — here the
        // span times the real work: `build` re-timing through the lift.
        let _span = tpn_obs::trace::span("session");
        self.misses.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(build()?);
        let mut map = self.map.lock().expect("session map lock");
        if let Some(slot) = map.get_mut(&digest) {
            slot.last_used = tick;
            return Ok(Arc::clone(&slot.session));
        }
        map.insert(
            digest,
            Slot {
                session: Arc::clone(&session),
                last_used: tick,
            },
        );
        while map.len() > self.capacity {
            let victim = map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(d, _)| *d)
                .expect("non-empty map");
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(session)
    }

    /// A counter and occupancy snapshot.
    pub fn stats(&self) -> SessionCacheStats {
        SessionCacheStats {
            sessions: self.map.lock().expect("session map lock").len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_net::parse_tpn;

    fn net(n: u32) -> TimedPetriNet {
        parse_tpn(&format!(
            "net n{n}\nplace a init 1\nplace b\n\
             trans go in a out b firing {}\ntrans back in b out a firing 3",
            n + 1
        ))
        .unwrap()
    }

    #[test]
    fn sessions_are_shared_per_digest() {
        let cache = SessionCache::new(4, SessionOptions::new());
        let a = net(1);
        let d = a.digest();
        let s1 = cache.session_for(d, a.clone());
        let s2 = cache.session_for(d, a);
        assert!(Arc::ptr_eq(&s1, &s2));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (1, 1, 1));
    }

    #[test]
    fn session_or_else_builds_once_and_reuses() {
        let cache = SessionCache::new(4, SessionOptions::new());
        let a = net(1);
        let d = a.digest();
        let s1 = cache
            .session_or_else(d, || {
                Ok::<_, ()>(Session::new(a.clone(), SessionOptions::new()))
            })
            .unwrap();
        // second demand hits; the builder must not run
        let s2 = cache
            .session_or_else(d, || -> Result<Session, ()> { panic!("must not rebuild") })
            .unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        // a failing builder caches nothing
        let other = net(2);
        let e = cache.session_or_else(other.digest(), || Err::<Session, _>("boom"));
        assert_eq!(e.unwrap_err(), "boom");
        assert_eq!(cache.stats().sessions, 1);
        // plain session_for finds the builder-inserted session too
        let s3 = cache.session_for(d, a);
        assert!(Arc::ptr_eq(&s1, &s3));
    }

    #[test]
    fn lru_eviction_by_capacity() {
        let cache = SessionCache::new(2, SessionOptions::new());
        let nets: Vec<TimedPetriNet> = (0..3).map(net).collect();
        let d0 = nets[0].digest();
        cache.session_for(d0, nets[0].clone());
        cache.session_for(nets[1].digest(), nets[1].clone());
        // touch net 0 so net 1 is the LRU victim
        cache.session_for(d0, nets[0].clone());
        cache.session_for(nets[2].digest(), nets[2].clone());
        let stats = cache.stats();
        assert_eq!((stats.sessions, stats.evictions), (2, 1));
        // net 0 survived (hit), net 1 was evicted (miss)
        cache.session_for(d0, nets[0].clone());
        let before = cache.stats().misses;
        cache.session_for(nets[1].digest(), nets[1].clone());
        assert_eq!(cache.stats().misses, before + 1);
    }
}
