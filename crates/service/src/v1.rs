//! The versioned unified request envelope: `POST /v1`.
//!
//! One HTTP request carries one net and *many* analyses, all executed
//! against one shared [`tpn_session::Session`] — the paper's derivation
//! chain is materialised once and every sub-request reads from it:
//!
//! ```json
//! {
//!   "net": "net c\nplace a init 1\n…",
//!   "requests": [
//!     {"kind": "analyze"},
//!     {"kind": "simulate", "events": 20000, "seed": 7},
//!     {"kind": "sweep", "spec": {"targets": ["throughput:t7"], "sweep": […]}},
//!     {"kind": "optimize", "spec": {"target": "throughput:t7", "box": […]}},
//!     {"kind": "whatif", "spec": {"perturbations": [{"E(t3)": "500"}]}}
//!   ]
//! }
//! ```
//!
//! The response is one document wrapping each sub-request's *exact*
//! legacy body (byte-identical to what the standalone endpoint would
//! return, and cached under the same `(digest, kind)` keys — a `/v1`
//! sub-request can hit a cache line a legacy request populated and
//! vice versa):
//!
//! ```json
//! {"kind":"v1","net":"c","digest":"…","results":[
//!   {"kind":"analyze","status":200,"body":{…}},
//!   {"kind":"sweep","status":200,"body":{…}}
//! ]}
//! ```
//!
//! Envelope-shaped problems (malformed JSON, unknown members, a
//! `.tpn` text that does not parse, too many requests) are a single
//! 400; per-analysis failures surface as that entry's `status`/`body`
//! without failing the siblings.

use crate::analysis::{RequestKind, ServiceError, DEFAULT_SIM_EVENTS, DEFAULT_SIM_SEED};
use crate::jsonval::Json;
use crate::optimize::OptimizeSpec;
use crate::sweep::{bad, u64_value, SweepSpec};
use crate::whatif::WhatifSpec;

/// Most analyses one envelope may carry.
pub const MAX_V1_REQUESTS: usize = 64;

/// One parsed sub-request of a `/v1` envelope.
#[derive(Debug, Clone)]
pub enum V1Request {
    /// A plain analysis (`analyze`, `graph`, `correctness`,
    /// `invariants`, `simulate`).
    Analysis(RequestKind),
    /// A parameter sweep with its full grid spec.
    Sweep(SweepSpec),
    /// A parameter synthesis with its full box spec.
    Optimize(OptimizeSpec),
    /// An incremental what-if batch with its perturbation spec.
    Whatif(WhatifSpec),
}

impl V1Request {
    /// The `kind` string echoed in the response entry.
    pub fn kind_name(&self) -> &'static str {
        match self {
            V1Request::Analysis(kind) => kind.name(),
            V1Request::Sweep(_) => "sweep",
            V1Request::Optimize(_) => "optimize",
            V1Request::Whatif(_) => "whatif",
        }
    }
}

/// Parse a `/v1` envelope body into the net text, the request list and
/// the opt-in `"trace"` flag (when true, the response carries the
/// request's span trace). `max_sim_events` bounds `simulate` budgets
/// exactly like the legacy query-parameter route.
pub fn parse_envelope(
    body: &str,
    max_sim_events: u64,
) -> Result<(String, Vec<V1Request>, bool), ServiceError> {
    let doc = Json::parse(body).map_err(|e| bad(format!("request body: {e}")))?;
    let members = doc
        .as_obj()
        .ok_or_else(|| bad(format!("envelope must be an object, got {}", doc.kind())))?;
    for (k, _) in members {
        if !matches!(k.as_str(), "net" | "requests" | "trace") {
            return Err(bad(format!("unknown envelope member {k:?}")));
        }
    }
    let trace = match doc.get("trace") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| bad(format!("\"trace\" must be a boolean, got {}", v.kind())))?,
    };
    let net_text = doc
        .get("net")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("envelope needs a \"net\" member with the .tpn text"))?
        .to_string();
    let requests_json = doc
        .get("requests")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("envelope needs a \"requests\" array"))?;
    if requests_json.is_empty() {
        return Err(bad("\"requests\" must not be empty"));
    }
    if requests_json.len() > MAX_V1_REQUESTS {
        return Err(bad(format!("more than {MAX_V1_REQUESTS} requests")));
    }
    let mut requests = Vec::with_capacity(requests_json.len());
    for r in requests_json {
        requests.push(parse_request(r, max_sim_events)?);
    }
    Ok((net_text, requests, trace))
}

fn parse_request(r: &Json, max_sim_events: u64) -> Result<V1Request, ServiceError> {
    let members = r
        .as_obj()
        .ok_or_else(|| bad(format!("each request must be an object, got {}", r.kind())))?;
    let kind = r
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("each request needs a \"kind\" string"))?;
    let allowed: &[&str] = match kind {
        "analyze" | "graph" | "correctness" | "invariants" => &["kind"],
        "simulate" => &["kind", "events", "seed"],
        "sweep" | "optimize" | "whatif" => &["kind", "spec"],
        other => {
            return Err(bad(format!(
                "unknown request kind {other:?} (expected analyze, graph, correctness, \
                 invariants, simulate, sweep, optimize or whatif)"
            )))
        }
    };
    for (k, _) in members {
        if !allowed.contains(&k.as_str()) {
            return Err(bad(format!("unknown member {k:?} of a {kind} request")));
        }
    }
    Ok(match kind {
        "analyze" => V1Request::Analysis(RequestKind::Analyze),
        "graph" => V1Request::Analysis(RequestKind::Graph),
        "correctness" => V1Request::Analysis(RequestKind::Correctness),
        "invariants" => V1Request::Analysis(RequestKind::Invariants),
        "simulate" => {
            let events = match r.get("events") {
                None => DEFAULT_SIM_EVENTS,
                Some(v) => u64_value(v, "events")?,
            };
            if events > max_sim_events {
                return Err(bad(format!(
                    "events {events} exceeds the limit {max_sim_events}"
                )));
            }
            let seed = match r.get("seed") {
                None => DEFAULT_SIM_SEED,
                Some(v) => u64_value(v, "seed")?,
            };
            V1Request::Analysis(RequestKind::Simulate { events, seed })
        }
        "sweep" => {
            let spec = r
                .get("spec")
                .ok_or_else(|| bad("a sweep request needs a \"spec\" object"))?;
            if spec.get("net").is_some() {
                return Err(bad("the net comes from the envelope's \"net\" member; \
                     drop \"net\" from the sweep spec"));
            }
            V1Request::Sweep(SweepSpec::from_json(spec)?)
        }
        "optimize" => {
            let spec = r
                .get("spec")
                .ok_or_else(|| bad("an optimize request needs a \"spec\" object"))?;
            if spec.get("net").is_some() {
                return Err(bad("the net comes from the envelope's \"net\" member; \
                     drop \"net\" from the optimize spec"));
            }
            V1Request::Optimize(OptimizeSpec::from_json(spec)?)
        }
        "whatif" => {
            let spec = r
                .get("spec")
                .ok_or_else(|| bad("a whatif request needs a \"spec\" object"))?;
            if spec.get("net").is_some() {
                return Err(bad("the net comes from the envelope's \"net\" member; \
                     drop \"net\" from the whatif spec"));
            }
            V1Request::Whatif(WhatifSpec::from_json(spec)?)
        }
        _ => unreachable!("kind validated above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_parses_every_kind() {
        let body = r#"{"net":"net c","requests":[
            {"kind":"analyze"},
            {"kind":"graph"},
            {"kind":"simulate","events":100,"seed":7},
            {"kind":"sweep","spec":{"targets":["cycle_time"],"sweep":[{"symbol":"F(go)","values":["1"]}]}},
            {"kind":"optimize","spec":{"target":"cycle_time","box":[{"symbol":"F(go)","from":"1","to":"2"}]}},
            {"kind":"whatif","spec":{"perturbations":[{"F(go)":"3/2"}]}}
        ]}"#;
        let (net, requests, trace) = parse_envelope(body, 1000).unwrap();
        assert_eq!(net, "net c");
        assert!(!trace, "trace defaults to off");
        assert_eq!(requests.len(), 6);
        assert!(matches!(
            requests[2],
            V1Request::Analysis(RequestKind::Simulate {
                events: 100,
                seed: 7
            })
        ));
        assert_eq!(requests[3].kind_name(), "sweep");
        assert_eq!(requests[4].kind_name(), "optimize");
        assert_eq!(requests[5].kind_name(), "whatif");
    }

    #[test]
    fn envelope_accepts_the_trace_flag() {
        let body = r#"{"net":"net c","trace":true,"requests":[{"kind":"analyze"}]}"#;
        let (_, _, trace) = parse_envelope(body, 1000).unwrap();
        assert!(trace);
    }

    #[test]
    fn envelope_rejects_malformed_requests() {
        for (body, why) in [
            ("[]", "not an object"),
            (r#"{"requests":[{"kind":"analyze"}]}"#, "missing net"),
            (r#"{"net":"n","requests":[]}"#, "empty requests"),
            (r#"{"net":"n"}"#, "missing requests"),
            (
                r#"{"net":"n","requests":[{"kind":"frobnicate"}]}"#,
                "unknown kind",
            ),
            (
                r#"{"net":"n","requests":[{"kind":"analyze","extra":1}]}"#,
                "unknown member",
            ),
            (
                r#"{"net":"n","requests":[{"kind":"sweep"}]}"#,
                "sweep without spec",
            ),
            (
                r#"{"net":"n","requests":[{"kind":"simulate","events":100000}]}"#,
                "events over the cap",
            ),
            (
                r#"{"net":"n","requests":[{"kind":"sweep","spec":{"net":"x","targets":["cycle_time"],"sweep":[{"symbol":"F(g)","values":["1"]}]}}]}"#,
                "net inside the spec",
            ),
            (
                r#"{"net":"n","surprise":1,"requests":[{"kind":"analyze"}]}"#,
                "unknown envelope member",
            ),
            (
                r#"{"net":"n","requests":[{"kind":"whatif"}]}"#,
                "whatif without spec",
            ),
            (
                r#"{"net":"n","requests":[{"kind":"whatif","spec":{"net":"x","perturbations":[{"F(g)":"1"}]}}]}"#,
                "net inside the whatif spec",
            ),
            (
                r#"{"net":"n","trace":1,"requests":[{"kind":"analyze"}]}"#,
                "non-boolean trace",
            ),
        ] {
            let e = parse_envelope(body, 1000).unwrap_err();
            assert_eq!(e.status(), 400, "{why}");
        }
    }
}
