//! The content-addressed analysis cache.
//!
//! Results are keyed by `(net digest, request kind)` — see
//! [`tpn_net::NetDigest`]; the digest is order-independent, so
//! textually different `.tpn` documents describing the same net share
//! cache lines. The map is sharded across `RwLock`s (readers never
//! contend with readers), eviction is least-recently-used within a
//! byte budget, and concurrent requests for the same key are
//! **coalesced**: one leader computes, followers block on the leader's
//! flight and receive the same `Arc`'d body, so a thundering herd of
//! identical requests costs exactly one pipeline run.
//!
//! Counters (hits, misses, evictions, computations, coalesced waits)
//! are plain atomics and feed the server's `/stats` endpoint.

use std::collections::hash_map::{DefaultHasher, Entry as MapEntry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use tpn_net::NetDigest;

use crate::{RequestKind, ServiceError};

/// A cache key: which net (by content digest) and which analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The net's canonical content digest.
    pub digest: NetDigest,
    /// The requested analysis, options included.
    pub kind: RequestKind,
}

/// Cache sizing knobs.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of independent shards (clamped to at least 1). More
    /// shards means less write contention; eviction budgets are
    /// per-shard (`byte_budget / shards`).
    pub shards: usize,
    /// Total byte budget across all shards. An entry's cost is its
    /// body length plus a fixed per-entry overhead.
    pub byte_budget: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            shards: 16,
            byte_budget: 64 * 1024 * 1024,
        }
    }
}

/// Fixed accounting overhead per entry (key, map slot, Arc header).
const ENTRY_OVERHEAD: usize = 64;

/// Counter snapshot for `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the map.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Actual pipeline executions (monotonic; `misses` minus failures
    /// re-counted — one per leader computation).
    pub computations: u64,
    /// Requests that piggybacked on a concurrent identical computation.
    pub coalesced: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Bytes currently cached (bodies plus per-entry overhead).
    pub bytes: usize,
}

struct CacheEntry {
    value: Arc<String>,
    cost: usize,
    /// Global LRU clock value of the last touch; atomic so `get` only
    /// needs the shard's read lock.
    last_used: AtomicU64,
}

struct Shard {
    map: HashMap<CacheKey, CacheEntry>,
    bytes: usize,
    budget: usize,
}

impl Shard {
    /// Evict least-recently-used entries (never `keep`) until the
    /// shard is back under budget, returning how many were dropped.
    /// One scan + one sort, not a scan per victim: the write lock is
    /// held for O(n log n) in the worst case, independent of how many
    /// entries must go.
    fn evict_over_budget(&mut self, keep: &CacheKey) -> u64 {
        if self.bytes <= self.budget {
            return 0;
        }
        let mut candidates: Vec<(u64, CacheKey)> = self
            .map
            .iter()
            .filter(|(k, _)| *k != keep)
            .map(|(k, e)| (e.last_used.load(Ordering::Relaxed), *k))
            .collect();
        candidates.sort_unstable_by_key(|(used, _)| *used);
        let mut evicted = 0;
        for (_, k) in candidates {
            if self.bytes <= self.budget {
                break;
            }
            if let Some(e) = self.map.remove(&k) {
                self.bytes -= e.cost;
                evicted += 1;
            }
        }
        evicted
    }
}

/// An in-flight computation that followers wait on.
struct Flight {
    result: Mutex<Option<Result<Arc<String>, ServiceError>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn resolve(&self, r: Result<Arc<String>, ServiceError>) {
        let mut slot = self.result.lock().expect("flight lock");
        if slot.is_none() {
            *slot = Some(r);
        }
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<String>, ServiceError> {
        let mut slot = self.result.lock().expect("flight lock");
        while slot.is_none() {
            slot = self.done.wait(slot).expect("flight lock");
        }
        slot.clone().expect("resolved flight")
    }
}

/// Resolves the flight with an error if the leader unwinds before
/// publishing a result, so followers never hang on a panicked leader.
struct LeaderGuard<'a> {
    cache: &'a AnalysisCache,
    key: CacheKey,
    flight: Arc<Flight>,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        self.flight.resolve(Err(ServiceError::Analysis(
            "computation panicked".to_string(),
        )));
        self.cache
            .inflight
            .lock()
            .expect("inflight lock")
            .remove(&self.key);
    }
}

/// The sharded, LRU-bounded, coalescing result cache.
pub struct AnalysisCache {
    shards: Vec<RwLock<Shard>>,
    inflight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    computations: AtomicU64,
    coalesced: AtomicU64,
}

impl AnalysisCache {
    /// An empty cache with the given sharding and budget.
    pub fn new(config: &CacheConfig) -> AnalysisCache {
        let shards = config.shards.max(1);
        let budget = config.byte_budget / shards;
        AnalysisCache {
            shards: (0..shards)
                .map(|_| {
                    RwLock::new(Shard {
                        map: HashMap::new(),
                        bytes: 0,
                        budget,
                    })
                })
                .collect(),
            inflight: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            computations: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &RwLock<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Look a key up without counting a hit or miss (used internally;
    /// prefer [`AnalysisCache::get_or_compute`]).
    fn lookup(&self, key: &CacheKey) -> Option<Arc<String>> {
        let shard = self.shard_of(key).read().expect("shard lock");
        let entry = shard.map.get(key)?;
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        Some(Arc::clone(&entry.value))
    }

    /// Insert (or replace) a value, evicting LRU entries as needed.
    fn insert(&self, key: CacheKey, value: Arc<String>) {
        let cost = value.len() + ENTRY_OVERHEAD;
        let mut shard = self.shard_of(&key).write().expect("shard lock");
        // A body that alone exceeds the shard budget is not cached at
        // all: admitting it would evict the whole shard *and* leave the
        // cache over its configured byte limit indefinitely.
        if cost > shard.budget {
            return;
        }
        let entry = CacheEntry {
            value,
            cost,
            last_used: AtomicU64::new(self.tick()),
        };
        if let Some(old) = shard.map.insert(key, entry) {
            shard.bytes -= old.cost;
        }
        shard.bytes += cost;
        let evicted = shard.evict_over_budget(&key);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// The core serving primitive: return the cached body for `key`, or
    /// compute it with `f` — at most once across all concurrent callers
    /// of the same key (request coalescing). Successful bodies are
    /// cached; errors are returned to every coalesced caller but not
    /// cached (they are cheap to rediscover and keep the cache
    /// all-success).
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        f: impl FnOnce() -> Result<String, ServiceError>,
    ) -> Result<Arc<String>, ServiceError> {
        if let Some(v) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        // A trace span only past the hit fast path: a hit is a sharded
        // read-lock lookup, below what span timing resolves, and the
        // hot path must not pay two clock reads for it. A "cache" span
        // in a trace therefore *means* the cache had to work (coalesced
        // wait or compute).
        let _span = tpn_obs::trace::span("cache");
        // Leader if the flight slot was vacant, follower otherwise.
        let (flight, is_leader) = {
            let mut inflight = self.inflight.lock().expect("inflight lock");
            match inflight.entry(key) {
                MapEntry::Occupied(e) => (Arc::clone(e.get()), false),
                MapEntry::Vacant(slot) => (Arc::clone(slot.insert(Arc::new(Flight::new()))), true),
            }
        };
        if !is_leader {
            // Follower: a leader is computing this very key.
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return flight.wait();
        }
        // The guard unregisters the flight (and unblocks followers with
        // an error) even if `f` panics.
        let guard = LeaderGuard {
            cache: self,
            key,
            flight,
        };
        // A racing leader may have inserted between our lookup and the
        // flight registration; serve that instead of recomputing.
        if let Some(v) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            guard.flight.resolve(Ok(Arc::clone(&v)));
            return Ok(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.computations.fetch_add(1, Ordering::Relaxed);
        let result = f().map(Arc::new);
        if let Ok(v) = &result {
            self.insert(key, Arc::clone(v));
        }
        guard.flight.resolve(result.clone());
        result
    }

    /// A counter and occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for shard in &self.shards {
            let s = shard.read().expect("shard lock");
            entries += s.map.len();
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            computations: self.computations.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn key(tag: u64) -> CacheKey {
        CacheKey {
            digest: NetDigest([tag, !tag]),
            kind: RequestKind::Analyze,
        }
    }

    fn single_shard(byte_budget: usize) -> AnalysisCache {
        AnalysisCache::new(&CacheConfig {
            shards: 1,
            byte_budget,
        })
    }

    #[test]
    fn hit_after_miss_returns_same_body() {
        let cache = single_shard(1 << 20);
        let a = cache
            .get_or_compute(key(1), || Ok("body".to_string()))
            .unwrap();
        let b = cache
            .get_or_compute(key(1), || panic!("must not recompute"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.computations), (1, 1, 1));
        assert_eq!(s.entries, 1);
        assert!(s.bytes >= "body".len());
    }

    #[test]
    fn distinct_kinds_are_distinct_entries() {
        let cache = single_shard(1 << 20);
        let k2 = CacheKey {
            digest: NetDigest([1, !1]),
            kind: RequestKind::Simulate {
                events: 10,
                seed: 1,
            },
        };
        cache.get_or_compute(key(1), || Ok("a".into())).unwrap();
        cache.get_or_compute(k2, || Ok("b".into())).unwrap();
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn lru_eviction_order() {
        // Budget fits two entries; A is touched, so inserting C evicts B.
        let body = "x".repeat(200);
        let cache = single_shard(2 * (200 + ENTRY_OVERHEAD) + 10);
        cache.get_or_compute(key(1), || Ok(body.clone())).unwrap();
        cache.get_or_compute(key(2), || Ok(body.clone())).unwrap();
        // touch A so B becomes the LRU entry
        cache
            .get_or_compute(key(1), || panic!("hit expected"))
            .unwrap();
        cache.get_or_compute(key(3), || Ok(body.clone())).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        // A survived, B was evicted, C is fresh
        cache
            .get_or_compute(key(1), || panic!("A must have survived"))
            .unwrap();
        cache
            .get_or_compute(key(3), || panic!("C must have survived"))
            .unwrap();
        let recomputed = AtomicUsize::new(0);
        cache
            .get_or_compute(key(2), || {
                recomputed.fetch_add(1, Ordering::Relaxed);
                Ok(body.clone())
            })
            .unwrap();
        assert_eq!(recomputed.load(Ordering::Relaxed), 1, "B was evicted");
    }

    #[test]
    fn oversized_bodies_are_served_but_not_admitted() {
        let cache = single_shard(100);
        let big = "x".repeat(500);
        let v = cache.get_or_compute(key(1), || Ok(big.clone())).unwrap();
        assert_eq!(*v, big, "caller still gets the body");
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes), (0, 0), "not admitted: {s:?}");
        // the next identical request recomputes rather than hitting
        cache.get_or_compute(key(1), || Ok(big.clone())).unwrap();
        assert_eq!(cache.stats().computations, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = single_shard(1 << 20);
        let e = cache
            .get_or_compute(key(1), || Err(ServiceError::Analysis("boom".into())))
            .unwrap_err();
        assert_eq!(e, ServiceError::Analysis("boom".into()));
        assert_eq!(cache.stats().entries, 0);
        // next call recomputes and can succeed
        cache.get_or_compute(key(1), || Ok("ok".into())).unwrap();
        assert_eq!(cache.stats().computations, 2);
    }

    #[test]
    fn concurrent_identical_requests_compute_once() {
        let cache = Arc::new(single_shard(1 << 20));
        let computed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computed = Arc::clone(&computed);
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_compute(key(42), || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        // hold the flight open long enough for the other
                        // threads to pile up behind it
                        std::thread::sleep(Duration::from_millis(60));
                        Ok("slow".to_string())
                    })
                    .unwrap()
            }));
        }
        let bodies: Vec<Arc<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computed.load(Ordering::Relaxed), 1, "exactly one leader");
        assert!(bodies.iter().all(|b| b.as_str() == "slow"));
        let s = cache.stats();
        assert_eq!(s.computations, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits + s.coalesced, 7, "{s:?}");
    }

    #[test]
    fn leader_panic_unblocks_followers() {
        let cache = Arc::new(single_shard(1 << 20));
        let c2 = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(key(9), || -> Result<String, ServiceError> {
                    std::thread::sleep(Duration::from_millis(60));
                    panic!("leader dies")
                })
            }));
        });
        std::thread::sleep(Duration::from_millis(10));
        let follower = cache.get_or_compute(key(9), || Ok("fallback".into()));
        leader.join().unwrap();
        // Either the follower coalesced onto the dying leader (error) or
        // arrived after cleanup and computed its own (success).
        if let Err(e) = follower {
            assert!(e.to_string().contains("panicked"), "{e}");
        }
    }
}
