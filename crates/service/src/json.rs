//! A minimal hand-rolled JSON writer (no serde; the workspace has no
//! registry access).
//!
//! [`JsonWriter`] produces *compact* JSON — no whitespace, one line —
//! so response bodies are cheap to compare byte-for-byte and embed as
//! sub-objects of other documents (`tpn batch` relies on this). Comma
//! placement is tracked by a container stack; string escaping covers
//! the mandatory set (`"`+`\` plus control characters as `\u00XX`).
//!
//! Numbers: integers are written exactly; [`tpn_rational::Rational`]
//! values are written as their exact `"n/d"` string rendering (an
//! `i128` numerator does not fit a JSON double), with a separate
//! [`JsonWriter::fixed`] helper for 6-decimal approximations where a
//! human-scale number is wanted.

use std::fmt::Write as _;

use tpn_rational::Rational;

/// Escape `s` as a JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What container the writer is currently inside.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Frame {
    Object,
    Array,
}

/// An append-only compact-JSON builder.
///
/// ```
/// use tpn_service::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name");
/// w.string("fig1");
/// w.key("states");
/// w.uint(18);
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name":"fig1","states":18}"#);
/// ```
#[derive(Default)]
pub struct JsonWriter {
    out: String,
    // (container, has at least one element/member)
    stack: Vec<(Frame, bool)>,
    // `key()` was just written; the next value completes the member
    pending_key: bool,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// The finished document.
    ///
    /// # Panics
    /// Panics if containers are still open — that is a serialization
    /// bug, not an input error.
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty() && !self.pending_key,
            "unbalanced JSON writer"
        );
        self.out
    }

    /// Separator bookkeeping before a value (or container opening).
    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some((frame, has)) = self.stack.last_mut() {
            debug_assert!(
                *frame == Frame::Array,
                "object members need key() before the value"
            );
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
    }

    /// Start a member of the current object: writes `"k":`.
    pub fn key(&mut self, k: &str) {
        let (frame, has) = self.stack.last_mut().expect("key() outside an object");
        debug_assert!(*frame == Frame::Object, "key() inside an array");
        if *has {
            self.out.push(',');
        }
        *has = true;
        self.out.push_str(&escape(k));
        self.out.push(':');
        self.pending_key = true;
    }

    /// Open `{`.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push((Frame::Object, false));
    }

    /// Close `}`.
    pub fn end_object(&mut self) {
        let popped = self.stack.pop();
        debug_assert!(matches!(popped, Some((Frame::Object, _))));
        self.out.push('}');
    }

    /// Open `[`.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push((Frame::Array, false));
    }

    /// Close `]`.
    pub fn end_array(&mut self) {
        let popped = self.stack.pop();
        debug_assert!(matches!(popped, Some((Frame::Array, _))));
        self.out.push(']');
    }

    /// A string value.
    pub fn string(&mut self, s: &str) {
        self.before_value();
        let escaped = escape(s);
        self.out.push_str(&escaped);
    }

    /// An unsigned integer value.
    pub fn uint(&mut self, n: u64) {
        self.before_value();
        let _ = write!(self.out, "{n}");
    }

    /// A signed (possibly 128-bit) integer value.
    pub fn int(&mut self, n: i128) {
        self.before_value();
        let _ = write!(self.out, "{n}");
    }

    /// A boolean value.
    pub fn bool(&mut self, b: bool) {
        self.before_value();
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// A fixed-point decimal with `digits` fractional digits — the JSON
    /// counterpart of the CLI's `{:.6}` throughput rendering.
    pub fn fixed(&mut self, x: f64, digits: usize) {
        self.before_value();
        let _ = write!(self.out, "{x:.digits$}");
    }

    /// A full-precision float: Rust's shortest round-trip rendering,
    /// which is deterministic across platforms (the sweep endpoint's
    /// byte-for-byte cacheability relies on this). Non-finite values
    /// have no JSON number form and are written as `null`.
    pub fn float(&mut self, x: f64) {
        if !x.is_finite() {
            self.null();
            return;
        }
        self.before_value();
        let _ = write!(self.out, "{x}");
    }

    /// A `null` value.
    pub fn null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// A pre-rendered JSON value embedded verbatim — the `/v1`
    /// envelope uses this to nest complete endpoint documents (which
    /// this writer itself produced) without re-parsing them. The
    /// caller owes the writer a single well-formed JSON value.
    pub fn raw(&mut self, json: &str) {
        self.before_value();
        self.out.push_str(json);
    }

    /// An exact rational as its `"n/d"` (or `"n"` when integral)
    /// string rendering.
    pub fn rational(&mut self, r: &Rational) {
        self.before_value();
        let rendered = r.to_string();
        self.out.push_str(&escape(&rendered));
    }
}

/// The canonical error body `{"error":"…"}` used by every endpoint.
pub fn error_body(message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("error");
    w.string(message);
    w.end_object();
    w.finish()
}

/// The structured error object `{"code":"…","message":"…"}` used by the
/// versioned surfaces (`/v1` envelopes and entries, `/whatif`
/// perturbation entries). `code` is a stable machine-readable
/// classifier ([`ServiceError::code`](crate::ServiceError::code));
/// `message` is the bare human-readable message without the legacy
/// `Display` prefix.
pub fn error_object(code: &str, message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("code");
    w.string(code);
    w.key("message");
    w.string(message);
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_containers_and_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.uint(1);
        w.int(-2);
        w.bool(true);
        w.begin_object();
        w.key("x");
        w.string("y");
        w.end_object();
        w.end_array();
        w.key("b");
        w.rational(&Rational::new(1067, 10));
        w.key("c");
        w.fixed(0.0028518, 6);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"a":[1,-2,true,{"x":"y"}],"b":"1067/10","c":0.002852}"#
        );
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("héllo"), "\"héllo\"");
    }

    #[test]
    fn error_body_shape() {
        assert_eq!(
            error_body("no \"such\" net"),
            r#"{"error":"no \"such\" net"}"#
        );
    }

    #[test]
    fn integral_rational_renders_without_denominator() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.rational(&Rational::from_int(5));
        w.end_array();
        assert_eq!(w.finish(), r#"["5"]"#);
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_writer_is_a_bug() {
        let mut w = JsonWriter::new();
        w.begin_object();
        let _ = w.finish();
    }
}
