//! The service's alerting layer: declarative rule configuration
//! (`tpn serve --alerts <file>`), built-in defaults derived from the
//! SLO config, silences, the `GET /alerts` document, and a std-only
//! webhook notifier for firing/resolved transitions.
//!
//! The evaluator itself is [`tpn_obs::alert::AlertEngine`], ticked by
//! the sampler ([`Service::sample_now`](crate::Service)) against the
//! same frame it just pushed into the retention ring, so alert state
//! advances at sampler cadence and every judgment is a pure function
//! of frame contents — replaying identical frames reproduces the
//! `/alerts` history byte for byte.
//!
//! Notifications never touch the request path or the sampler: the
//! sampler enqueues rendered NDJSON lines into a bounded queue
//! (dropping with a counter when full) and a background worker POSTs
//! them with bounded exponential-backoff retries. A dead webhook
//! endpoint costs the daemon nothing but a counter.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tpn_obs::alert::{AlertEngine, AlertRule, Cmp, Signal};

use crate::history;
use crate::json::JsonWriter;
use crate::jsonval::Json;
use crate::metrics::{Endpoint, ENDPOINTS};
use crate::slo::SloConfig;

/// Longest accepted `window_s` / `for_s` / `resolve_s` / silence TTL,
/// seconds (one day — matching `/metrics/history`'s window bound).
const MAX_SECONDS: u64 = 86_400;

/// One parsed (but not yet bound) rule: burn-rate rules capture the
/// endpoint and take their objective from the SLO config at bind
/// time, every other signal is already resolved to ring columns.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSpec {
    /// Unique rule name — the identity merging, events and silences
    /// key on.
    pub name: String,
    /// `false` removes a same-named built-in default (or disables
    /// this rule entirely).
    pub enabled: bool,
    /// The watched signal; `None` on a disable-only spec.
    signal: Option<SpecSignal>,
    severity: String,
    cmp: Cmp,
    threshold: f64,
    window_s: u64,
    for_s: u64,
    resolve_s: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum SpecSignal {
    Resolved(Signal),
    Burn(Endpoint),
}

/// Webhook notifier configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct WebhookConfig {
    /// Target host (name or address).
    pub host: String,
    /// Target port.
    pub port: u16,
    /// Request path (leading `/`).
    pub path: String,
    /// Bounded queue capacity; transitions past it are dropped and
    /// counted.
    pub queue: usize,
    /// Retries after the first failed POST (exponential backoff).
    pub retries: u32,
}

/// Declarative alerting policy: history sizing, built-in defaults,
/// extra rules and the optional webhook sink.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertsConfig {
    /// Transition events the `/alerts` history retains (default 256).
    pub history: usize,
    /// Whether the built-in per-endpoint SLO burn rules are generated
    /// (default true).
    pub defaults: bool,
    /// User rules, merged onto the defaults by name.
    pub rules: Vec<RuleSpec>,
    /// Webhook sink for firing/resolved transitions.
    pub webhook: Option<WebhookConfig>,
}

impl Default for AlertsConfig {
    fn default() -> AlertsConfig {
        AlertsConfig {
            history: 256,
            defaults: true,
            rules: Vec::new(),
            webhook: None,
        }
    }
}

impl AlertsConfig {
    /// Parse an alerts document (`tpn serve --alerts <file>`):
    ///
    /// ```json
    /// {
    ///   "history": 256,
    ///   "defaults": true,
    ///   "webhook": {"url": "http://127.0.0.1:9400/hook", "queue": 256, "retries": 3},
    ///   "rules": [
    ///     {"name": "analyze_p99", "signal": "quantile", "series": "analyze",
    ///      "q": 0.99, "cmp": ">", "threshold_ms": 500,
    ///      "window_s": 60, "for_s": 30, "resolve_s": 60, "severity": "page"},
    ///     {"name": "rss_high", "signal": "gauge", "series": "rss_bytes",
    ///      "cmp": ">=", "threshold": 2000000000},
    ///     {"name": "req_rate", "signal": "counter_rate", "series": "requests",
    ///      "cmp": ">=", "threshold": 1000},
    ///     {"name": "burn:stats", "signal": "burn_rate", "endpoint": "stats",
    ///      "threshold": 6.0},
    ///     {"name": "slo_burn:sweep", "enabled": false}
    ///   ]
    /// }
    /// ```
    ///
    /// Signals: `counter_rate` (per-second delta of a ring counter
    /// column), `gauge` (latest gauge value), `quantile` (windowed
    /// latency quantile of an endpoint histogram, threshold in
    /// `threshold_ms`), `burn_rate` (worst SLO budget burn of an
    /// endpoint, objective from the SLO config). Series names are the
    /// ring schema's: `/stats` counters, `err.<endpoint>`, gauge and
    /// endpoint names. Omitted members default (`cmp` `">="`,
    /// `window_s` 300, `for_s`/`resolve_s` 0, `severity` `"warn"`);
    /// a rule named like a built-in default replaces it, and
    /// `{"name": ..., "enabled": false}` removes it.
    pub fn from_json(text: &str) -> Result<AlertsConfig, String> {
        let doc = Json::parse(text).map_err(|e| format!("alerts config: {e}"))?;
        let mut cfg = AlertsConfig::default();
        if let Some(v) = doc.get("history") {
            let n = parse_u64(v, "history")?;
            if n == 0 || n > 4_096 {
                return Err(format!("alerts config: history {n} must be in 1..=4096"));
            }
            cfg.history = n as usize;
        }
        if let Some(v) = doc.get("defaults") {
            cfg.defaults = v
                .as_bool()
                .ok_or_else(|| "alerts config: \"defaults\" must be a boolean".to_string())?;
        }
        if let Some(v) = doc.get("webhook") {
            cfg.webhook = Some(parse_webhook(v)?);
        }
        if let Some(v) = doc.get("rules") {
            let rules = v
                .as_arr()
                .ok_or_else(|| "alerts config: \"rules\" must be an array".to_string())?;
            for rule in rules {
                let spec = parse_rule(rule)?;
                if cfg.rules.iter().any(|r| r.name == spec.name) {
                    return Err(format!("alerts config: duplicate rule {:?}", spec.name));
                }
                cfg.rules.push(spec);
            }
        }
        Ok(cfg)
    }

    /// Bind the configuration against an SLO config: generate the
    /// built-in defaults (one fast-window burn rule per endpoint with
    /// an objective, firing at the SLO's degraded threshold after 60s,
    /// resolving after 300s quiet), then merge the user rules by name.
    pub fn bind(&self, slo: &SloConfig) -> Vec<AlertRule> {
        let mut rules: Vec<AlertRule> = Vec::new();
        if self.defaults {
            for (i, endpoint) in ENDPOINTS.iter().enumerate() {
                let Some(objective) = slo.objective_for(*endpoint) else {
                    continue;
                };
                rules.push(AlertRule {
                    name: format!("slo_burn:{}", endpoint.name()),
                    severity: "page".to_string(),
                    signal: Signal::BurnRate {
                        hist: history::endpoint_hist_col(i),
                        errors: history::endpoint_error_col(i),
                        objective,
                    },
                    cmp: Cmp::Ge,
                    threshold: slo.degraded_burn,
                    window_s: slo.fast_window_s,
                    for_s: 60,
                    resolve_s: 300,
                });
            }
        }
        for spec in &self.rules {
            if !spec.enabled {
                rules.retain(|r| r.name != spec.name);
                continue;
            }
            let signal = match spec.signal.clone() {
                Some(SpecSignal::Resolved(s)) => s,
                Some(SpecSignal::Burn(endpoint)) => Signal::BurnRate {
                    hist: history::endpoint_hist_col(endpoint.index()),
                    errors: history::endpoint_error_col(endpoint.index()),
                    objective: slo.objective_for(endpoint).unwrap_or(slo.default_objective),
                },
                // parse_rule guarantees enabled specs carry a signal.
                None => continue,
            };
            let bound = AlertRule {
                name: spec.name.clone(),
                severity: spec.severity.clone(),
                signal,
                cmp: spec.cmp,
                threshold: spec.threshold,
                window_s: spec.window_s,
                for_s: spec.for_s,
                resolve_s: spec.resolve_s,
            };
            match rules.iter_mut().find(|r| r.name == spec.name) {
                Some(slot) => *slot = bound,
                None => rules.push(bound),
            }
        }
        rules
    }

    /// Bind and wrap into a fresh engine.
    pub fn engine(&self, slo: &SloConfig) -> AlertEngine {
        AlertEngine::new(self.bind(slo), self.history)
    }
}

fn parse_u64(v: &Json, what: &str) -> Result<u64, String> {
    v.as_num()
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("alerts config: {what} must be a non-negative integer"))
}

fn parse_f64(v: &Json, what: &str) -> Result<f64, String> {
    v.as_num()
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("alerts config: {what} must be a number"))
}

fn parse_seconds(v: &Json, what: &str, min: u64) -> Result<u64, String> {
    let n = parse_u64(v, what)?;
    if n < min || n > MAX_SECONDS {
        return Err(format!(
            "alerts config: {what} {n} must be in {min}..={MAX_SECONDS}"
        ));
    }
    Ok(n)
}

/// Parse `{"url": "http://host:port/path", ...}`. The scheme must be
/// plain `http`; the port defaults to 80, the path to `/`.
fn parse_webhook(v: &Json) -> Result<WebhookConfig, String> {
    let url = v
        .get("url")
        .and_then(Json::as_str)
        .ok_or_else(|| "alerts config: webhook.url must be a string".to_string())?;
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("alerts config: webhook.url {url:?} must start with http://"))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let (host, port) = match authority.rsplit_once(':') {
        Some((h, p)) => (
            h,
            p.parse::<u16>()
                .map_err(|_| format!("alerts config: webhook.url port {p:?} is invalid"))?,
        ),
        None => (authority, 80),
    };
    if host.is_empty() {
        return Err(format!("alerts config: webhook.url {url:?} has no host"));
    }
    let mut cfg = WebhookConfig {
        host: host.to_string(),
        port,
        path: path.to_string(),
        queue: 256,
        retries: 3,
    };
    if let Some(q) = v.get("queue") {
        let q = parse_u64(q, "webhook.queue")?;
        if q == 0 || q > 4_096 {
            return Err(format!(
                "alerts config: webhook.queue {q} must be in 1..=4096"
            ));
        }
        cfg.queue = q as usize;
    }
    if let Some(r) = v.get("retries") {
        let r = parse_u64(r, "webhook.retries")?;
        if r > 10 {
            return Err(format!("alerts config: webhook.retries {r} must be <= 10"));
        }
        cfg.retries = r as u32;
    }
    Ok(cfg)
}

fn parse_rule(v: &Json) -> Result<RuleSpec, String> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| "alerts config: every rule needs a non-empty \"name\"".to_string())?
        .to_string();
    let enabled = v.get("enabled").and_then(Json::as_bool).unwrap_or(true);
    if !enabled {
        return Ok(RuleSpec {
            name,
            enabled: false,
            signal: None,
            severity: String::new(),
            cmp: Cmp::Ge,
            threshold: 0.0,
            window_s: 300,
            for_s: 0,
            resolve_s: 0,
        });
    }
    let schema = history::schema();
    let kind = v
        .get("signal")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("alerts config: rule {name:?} needs a \"signal\""))?;
    let series = |what: &str| {
        v.get("series")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("alerts config: rule {name:?} ({what}) needs a \"series\""))
    };
    // Thresholds: quantile rules take milliseconds (converted to the
    // signal's nanoseconds), everything else raw units.
    let mut threshold_from_ms = false;
    let signal = match kind {
        "counter_rate" => {
            let s = series("counter_rate")?;
            let column = schema.counter_index(s).ok_or_else(|| {
                format!("alerts config: rule {name:?}: unknown counter series {s:?}")
            })?;
            SpecSignal::Resolved(Signal::CounterRate { column })
        }
        "gauge" => {
            let s = series("gauge")?;
            let column = schema.gauge_index(s).ok_or_else(|| {
                format!("alerts config: rule {name:?}: unknown gauge series {s:?}")
            })?;
            SpecSignal::Resolved(Signal::Gauge { column })
        }
        "quantile" => {
            let s = series("quantile")?;
            let column = schema.hist_index(s).ok_or_else(|| {
                format!("alerts config: rule {name:?}: unknown latency series {s:?}")
            })?;
            let q = match v.get("q") {
                Some(q) => parse_f64(q, "q")?,
                None => 0.99,
            };
            if !(q > 0.0 && q < 1.0) {
                return Err(format!(
                    "alerts config: rule {name:?}: q {q} must be in (0, 1)"
                ));
            }
            threshold_from_ms = true;
            SpecSignal::Resolved(Signal::QuantileNs { column, q })
        }
        "burn_rate" => {
            let e = v.get("endpoint").and_then(Json::as_str).ok_or_else(|| {
                format!("alerts config: rule {name:?} (burn_rate) needs an \"endpoint\"")
            })?;
            let endpoint = Endpoint::by_name(e)
                .ok_or_else(|| format!("alerts config: rule {name:?}: unknown endpoint {e:?}"))?;
            SpecSignal::Burn(endpoint)
        }
        other => {
            return Err(format!(
                "alerts config: rule {name:?}: unknown signal {other:?} \
                 (counter_rate, gauge, quantile, burn_rate)"
            ));
        }
    };
    let threshold = if threshold_from_ms {
        let ms = v.get("threshold_ms").ok_or_else(|| {
            format!("alerts config: rule {name:?} (quantile) needs a \"threshold_ms\"")
        })?;
        let ms = parse_f64(ms, "threshold_ms")?;
        if !(ms > 0.0 && ms.is_finite()) {
            return Err(format!(
                "alerts config: rule {name:?}: threshold_ms must be positive"
            ));
        }
        ms * 1e6
    } else {
        let t = v
            .get("threshold")
            .ok_or_else(|| format!("alerts config: rule {name:?} needs a \"threshold\""))?;
        let t = parse_f64(t, "threshold")?;
        if !t.is_finite() {
            return Err(format!(
                "alerts config: rule {name:?}: threshold must be finite"
            ));
        }
        t
    };
    let cmp = match v.get("cmp") {
        Some(c) => {
            let c = c
                .as_str()
                .ok_or_else(|| format!("alerts config: rule {name:?}: cmp must be a string"))?;
            Cmp::by_name(c).ok_or_else(|| {
                format!("alerts config: rule {name:?}: cmp {c:?} must be one of >, >=, <, <=")
            })?
        }
        None => Cmp::Ge,
    };
    let window_s = match v.get("window_s") {
        Some(w) => parse_seconds(w, "window_s", 1)?,
        None => 300,
    };
    let for_s = match v.get("for_s") {
        Some(f) => parse_seconds(f, "for_s", 0)?,
        None => 0,
    };
    let resolve_s = match v.get("resolve_s") {
        Some(r) => parse_seconds(r, "resolve_s", 0)?,
        None => 0,
    };
    let severity = v
        .get("severity")
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("alerts config: rule {name:?}: severity must be a string"))
        })
        .transpose()?
        .unwrap_or_else(|| "warn".to_string());
    Ok(RuleSpec {
        name,
        enabled: true,
        signal: Some(signal),
        severity,
        cmp,
        threshold,
        window_s,
        for_s,
        resolve_s,
    })
}

/// One active silence: transitions of `rule` are not notified until
/// `until_ms`.
#[derive(Debug, Clone)]
pub struct Silence {
    /// Server-assigned identifier.
    pub id: u64,
    /// The silenced rule's name.
    pub rule: String,
    /// Expiry, milliseconds since the Unix epoch.
    pub until_ms: u64,
    /// Operator-supplied label.
    pub comment: String,
}

/// Whether `rule` is silenced at `now_ms`.
pub(crate) fn is_silenced(silences: &[Silence], rule: &str, now_ms: u64) -> bool {
    silences
        .iter()
        .any(|s| s.rule == rule && s.until_ms > now_ms)
}

/// Parse a `POST /alerts/silence` body
/// (`{"rule": "...", "ttl_s": 600, "comment": "..."}`) against the
/// bound rule set. Returns `(rule, ttl_s, comment)`.
pub(crate) fn parse_silence(
    body: &str,
    rules: &[AlertRule],
) -> Result<(String, u64, String), String> {
    let doc = Json::parse(body).map_err(|e| format!("silence: {e}"))?;
    let rule = doc
        .get("rule")
        .and_then(Json::as_str)
        .ok_or_else(|| "silence: \"rule\" must be a string".to_string())?;
    if !rules.iter().any(|r| r.name == rule) {
        return Err(format!("silence: unknown rule {rule:?}"));
    }
    let ttl = doc
        .get("ttl_s")
        .ok_or_else(|| "silence: \"ttl_s\" is required".to_string())?;
    let ttl =
        parse_u64(ttl, "ttl_s").map_err(|_| "silence: ttl_s must be an integer".to_string())?;
    if ttl == 0 || ttl > MAX_SECONDS {
        return Err(format!("silence: ttl_s {ttl} must be in 1..={MAX_SECONDS}"));
    }
    let comment = doc
        .get("comment")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    Ok((rule.to_string(), ttl, comment))
}

/// The `GET /alerts` document: columnar per-rule state (one canonical
/// order — the engine's rule order), the bounded transition history
/// oldest first, and active silences. Every timestamp comes from the
/// evaluator's frame clock (`as_of_ms` is the last tick), so a replay
/// of identical frames renders identical bytes.
pub(crate) fn alerts_json(engine: &AlertEngine, silences: &[Silence]) -> String {
    let as_of = engine.last_tick_ms();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("as_of_ms");
    w.uint(as_of);
    w.key("firing");
    w.uint(engine.firing_count());
    w.key("pending");
    w.uint(engine.pending_count());
    w.key("rules");
    w.begin_array();
    for r in engine.rules() {
        w.string(&r.name);
    }
    w.end_array();
    w.key("severity");
    w.begin_array();
    for r in engine.rules() {
        w.string(&r.severity);
    }
    w.end_array();
    w.key("state");
    w.begin_array();
    for (i, _) in engine.rules().iter().enumerate() {
        w.string(engine.status(i).state.as_str());
    }
    w.end_array();
    w.key("since_ms");
    w.begin_array();
    for (i, _) in engine.rules().iter().enumerate() {
        w.uint(engine.status(i).since_ms);
    }
    w.end_array();
    w.key("value");
    w.begin_array();
    for (i, _) in engine.rules().iter().enumerate() {
        // NaN (never evaluated / idle window) renders as null.
        w.float(engine.status(i).value);
    }
    w.end_array();
    w.key("threshold");
    w.begin_array();
    for r in engine.rules() {
        w.float(r.threshold);
    }
    w.end_array();
    w.key("silenced");
    w.begin_array();
    for r in engine.rules() {
        w.bool(is_silenced(silences, &r.name, as_of));
    }
    w.end_array();
    w.key("history");
    w.begin_array();
    for e in engine.history() {
        w.begin_object();
        w.key("seq");
        w.uint(e.seq);
        w.key("ts_ms");
        w.uint(e.unix_ms);
        w.key("rule");
        w.string(&engine.rules()[e.rule].name);
        w.key("event");
        w.string(e.transition.as_str());
        w.key("value");
        w.float(e.value);
        w.end_object();
    }
    w.end_array();
    w.key("silences");
    w.begin_array();
    for s in silences {
        w.begin_object();
        w.key("id");
        w.uint(s.id);
        w.key("rule");
        w.string(&s.rule);
        w.key("until_ms");
        w.uint(s.until_ms);
        w.key("comment");
        w.string(&s.comment);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// One webhook NDJSON line for a transition event.
pub(crate) fn notification_line(rule: &AlertRule, event: &tpn_obs::alert::AlertEvent) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("ts_ms");
    w.uint(event.unix_ms);
    w.key("rule");
    w.string(&rule.name);
    w.key("severity");
    w.string(&rule.severity);
    w.key("event");
    w.string(event.transition.as_str());
    w.key("value");
    w.float(event.value);
    w.key("threshold");
    w.float(rule.threshold);
    w.key("window_s");
    w.uint(rule.window_s);
    w.end_object();
    w.finish()
}

/// Notifier outcome counters, shared between the worker thread and
/// the `/metrics` renderer.
#[derive(Debug, Default)]
pub(crate) struct NotifyCounters {
    /// Lines successfully POSTed.
    pub sent: AtomicU64,
    /// Lines dropped at the full queue.
    pub dropped: AtomicU64,
    /// Lines abandoned after exhausting retries.
    pub failed: AtomicU64,
}

struct NotifyQueue {
    lines: Mutex<VecDeque<String>>,
    available: Condvar,
    stop: AtomicBool,
    cap: usize,
    counters: Arc<NotifyCounters>,
}

/// The webhook notifier: a bounded queue drained by one background
/// worker. `enqueue` never blocks beyond the queue mutex (held only
/// for a push); the worker batches everything queued into one NDJSON
/// POST and retries transport failures with exponential backoff.
pub(crate) struct Notifier {
    queue: Arc<NotifyQueue>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Notifier {
    pub(crate) fn spawn(config: WebhookConfig, counters: Arc<NotifyCounters>) -> Notifier {
        let queue = Arc::new(NotifyQueue {
            lines: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            cap: config.queue,
            counters,
        });
        let worker_queue = queue.clone();
        let worker = std::thread::Builder::new()
            .name("tpn-notify".to_string())
            .spawn(move || worker_loop(&worker_queue, &config))
            .expect("spawn notifier thread");
        Notifier {
            queue,
            worker: Some(worker),
        }
    }

    /// Queue one NDJSON line; drops (and counts) when the queue is at
    /// capacity. Called from the sampler — must never block on I/O.
    pub(crate) fn enqueue(&self, line: String) {
        let mut lines = self.queue.lines.lock().expect("notify queue lock");
        if lines.len() >= self.queue.cap {
            self.queue.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        lines.push_back(line);
        drop(lines);
        self.queue.available.notify_one();
    }
}

impl Drop for Notifier {
    fn drop(&mut self) {
        self.queue.stop.store(true, Ordering::Release);
        self.queue.available.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

fn worker_loop(queue: &NotifyQueue, config: &WebhookConfig) {
    loop {
        let batch: Vec<String> = {
            let mut lines = queue.lines.lock().expect("notify queue lock");
            while lines.is_empty() {
                if queue.stop.load(Ordering::Acquire) {
                    return;
                }
                let (guard, _) = queue
                    .available
                    .wait_timeout(lines, Duration::from_millis(200))
                    .expect("notify queue wait");
                lines = guard;
            }
            lines.drain(..).collect()
        };
        let n = batch.len() as u64;
        if post_with_retries(queue, config, &batch) {
            queue.counters.sent.fetch_add(n, Ordering::Relaxed);
        } else {
            queue.counters.failed.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// POST the batch, retrying transport/status failures with 50ms
/// shifted-left backoff. Gives up early when the notifier is being
/// dropped.
fn post_with_retries(queue: &NotifyQueue, config: &WebhookConfig, batch: &[String]) -> bool {
    for attempt in 0..=config.retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(50 << (attempt - 1).min(6)));
        }
        if queue.stop.load(Ordering::Acquire) {
            return false;
        }
        if post_once(config, batch).is_ok() {
            return true;
        }
    }
    false
}

/// One webhook POST: hand-rolled HTTP/1.1 over a fresh connection
/// (`Connection: close`), bounded by a 1s connect timeout and 2s
/// read/write timeouts so a black-holed endpoint cannot wedge the
/// worker. Success is any 2xx status.
fn post_once(config: &WebhookConfig, batch: &[String]) -> std::io::Result<()> {
    let addr = (config.host.as_str(), config.port)
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut body = String::new();
    for line in batch {
        body.push_str(line);
        body.push('\n');
    }
    let request = format!(
        "POST {} HTTP/1.1\r\nHost: {}:{}\r\nContent-Type: application/x-ndjson\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        config.path,
        config.host,
        config.port,
        body.len(),
        body
    );
    stream.write_all(request.as_bytes())?;
    // Read just the response head; the status line is all we judge.
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if crate::http::find_double_crlf(&head).is_some() || head.len() > 16 * 1024 {
            break;
        }
    }
    let line = head.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let text = std::str::from_utf8(line)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 status"))?;
    // "HTTP/1.1 200 OK" — the status code is the second token.
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    if (200..300).contains(&status) {
        Ok(())
    } else {
        Err(std::io::Error::other(format!("webhook status {status}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_obs::alert::AlertState;
    use tpn_obs::series::SeriesRing;

    #[test]
    fn defaults_bind_one_burn_rule_per_objective() {
        let slo = SloConfig::default();
        let rules = AlertsConfig::default().bind(&slo);
        // One rule per analysis endpoint, in ENDPOINTS order.
        let names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names[0], "slo_burn:analyze");
        assert_eq!(rules.len(), 9);
        assert!(names.contains(&"slo_burn:whatif"));
        for r in &rules {
            assert_eq!(r.threshold, slo.degraded_burn);
            assert_eq!(r.window_s, slo.fast_window_s);
            assert_eq!((r.for_s, r.resolve_s), (60, 300));
        }
    }

    #[test]
    fn config_parses_and_merges_onto_defaults() {
        let cfg = AlertsConfig::from_json(
            r#"{
                "history": 64,
                "webhook": {"url": "http://127.0.0.1:9400/hook", "queue": 8},
                "rules": [
                    {"name": "rss_high", "signal": "gauge", "series": "rss_bytes",
                     "cmp": ">", "threshold": 2000000000, "for_s": 120},
                    {"name": "analyze_p99", "signal": "quantile", "series": "analyze",
                     "q": 0.5, "threshold_ms": 500, "window_s": 60, "severity": "page"},
                    {"name": "err_rate", "signal": "counter_rate", "series": "err.analyze",
                     "threshold": 1},
                    {"name": "slo_burn:analyze", "signal": "burn_rate",
                     "endpoint": "analyze", "threshold": 2.5, "for_s": 0},
                    {"name": "slo_burn:sweep", "enabled": false}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(cfg.history, 64);
        let hook = cfg.webhook.as_ref().unwrap();
        assert_eq!(
            (hook.host.as_str(), hook.port, hook.path.as_str()),
            ("127.0.0.1", 9400, "/hook")
        );
        assert_eq!((hook.queue, hook.retries), (8, 3));
        let rules = cfg.bind(&SloConfig::default());
        let names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        // sweep default removed; the three new rules appended after
        // the remaining defaults; analyze default replaced in place.
        assert!(!names.contains(&"slo_burn:sweep"));
        assert_eq!(rules.len(), 8 + 3);
        let analyze = rules.iter().find(|r| r.name == "slo_burn:analyze").unwrap();
        assert_eq!((analyze.threshold, analyze.for_s), (2.5, 0));
        let p99 = rules.iter().find(|r| r.name == "analyze_p99").unwrap();
        assert_eq!(p99.threshold, 500.0 * 1e6);
        assert_eq!(p99.severity, "page");
        let err = rules.iter().find(|r| r.name == "err_rate").unwrap();
        assert!(matches!(err.signal, Signal::CounterRate { .. }));
    }

    #[test]
    fn config_rejects_nonsense() {
        for bad in [
            "not json",
            r#"{"history": 0}"#,
            r#"{"history": 5000}"#,
            r#"{"rules": [{}]}"#,
            r#"{"rules": [{"name": "x"}]}"#,
            r#"{"rules": [{"name": "x", "signal": "nope", "threshold": 1}]}"#,
            r#"{"rules": [{"name": "x", "signal": "gauge", "series": "nope", "threshold": 1}]}"#,
            r#"{"rules": [{"name": "x", "signal": "gauge", "series": "rss_bytes"}]}"#,
            r#"{"rules": [{"name": "x", "signal": "quantile", "series": "analyze", "q": 1.5, "threshold_ms": 1}]}"#,
            r#"{"rules": [{"name": "x", "signal": "quantile", "series": "analyze", "threshold": 1}]}"#,
            r#"{"rules": [{"name": "x", "signal": "gauge", "series": "rss_bytes", "cmp": "!=", "threshold": 1}]}"#,
            r#"{"rules": [{"name": "x", "signal": "gauge", "series": "rss_bytes", "threshold": 1, "window_s": 0}]}"#,
            r#"{"rules": [{"name": "x", "signal": "burn_rate", "threshold": 1}]}"#,
            r#"{"rules": [{"name": "x", "signal": "gauge", "series": "rss_bytes", "threshold": 1},
                          {"name": "x", "signal": "gauge", "series": "rss_bytes", "threshold": 2}]}"#,
            r#"{"webhook": {"url": "ftp://x/hook"}}"#,
            r#"{"webhook": {"url": "http://:1/hook"}}"#,
            r#"{"webhook": {"url": "http://h:1/x", "queue": 0}}"#,
            r#"{"webhook": {"url": "http://h:1/x", "retries": 11}}"#,
        ] {
            assert!(AlertsConfig::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn silences_gate_by_rule_and_expiry() {
        let silences = vec![Silence {
            id: 1,
            rule: "rss_high".into(),
            until_ms: 10_000,
            comment: "maintenance".into(),
        }];
        assert!(is_silenced(&silences, "rss_high", 9_999));
        assert!(!is_silenced(&silences, "rss_high", 10_000));
        assert!(!is_silenced(&silences, "other", 9_999));
        let rules = AlertsConfig::default().bind(&SloConfig::default());
        assert!(parse_silence(r#"{"rule": "slo_burn:analyze", "ttl_s": 60}"#, &rules).is_ok());
        assert!(parse_silence(r#"{"rule": "nope", "ttl_s": 60}"#, &rules).is_err());
        assert!(parse_silence(r#"{"rule": "slo_burn:analyze", "ttl_s": 0}"#, &rules).is_err());
        assert!(parse_silence("{}", &rules).is_err());
    }

    #[test]
    fn alerts_document_is_canonical_and_replayable() {
        let cfg = AlertsConfig::from_json(
            r#"{"defaults": false, "rules": [
                {"name": "rss_high", "signal": "gauge", "series": "rss_bytes",
                 "threshold": 100, "for_s": 1, "resolve_s": 1}
            ]}"#,
        )
        .unwrap();
        let slo = SloConfig::default();
        let run = || {
            let mut engine = cfg.engine(&slo);
            let ring = SeriesRing::new(history::schema(), 16);
            let m = crate::metrics::ServiceMetrics::new(true);
            let base = crate::metrics::StatsSnapshot::default();
            for (i, rss) in [200.0, 200.0, 200.0, 0.0, 0.0, 0.0].iter().enumerate() {
                let mut f = history::collect_frame(&m, &base, (i as u64 + 1) * 1_000);
                f.gauges[history::GAUGE_RSS] = *rss;
                ring.push(&f);
                engine.tick(&ring, &f);
            }
            (alerts_json(&engine, &[]), engine.firing_count())
        };
        let (doc, firing) = run();
        assert_eq!(firing, 0); // fired at 2s, resolved at 5s
        crate::jsonval::Json::parse(&doc).expect("alerts document parses");
        assert!(doc.contains(r#""rules":["rss_high"]"#), "{doc}");
        assert!(doc.contains(r#""event":"firing""#), "{doc}");
        assert!(doc.contains(r#""event":"resolved""#), "{doc}");
        // Replaying identical frames renders identical bytes.
        assert_eq!(doc, run().0);
    }

    #[test]
    fn engine_runs_against_the_service_schema() {
        let slo = SloConfig::default();
        let mut engine = AlertsConfig::default().engine(&slo);
        let ring = SeriesRing::new(history::schema(), 8);
        let m = crate::metrics::ServiceMetrics::new(true);
        let base = crate::metrics::StatsSnapshot::default();
        let f0 = history::collect_frame(&m, &base, 1_000);
        ring.push(&f0);
        engine.tick(&ring, &f0);
        // 10 catastrophically slow analyze requests: burn goes past
        // the degraded threshold, rule goes pending (for_s 60 gates
        // actual firing).
        for _ in 0..10 {
            m.record(crate::metrics::Endpoint::Analyze, 200, 1_000_000_000);
        }
        let f1 = history::collect_frame(&m, &base, 2_000);
        ring.push(&f1);
        engine.tick(&ring, &f1);
        assert_eq!(engine.status(0).state, AlertState::Pending);
        assert_eq!(engine.pending_count(), 1);
    }
}
