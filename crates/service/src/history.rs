//! Time-series retention for the service: the ring schema, frame
//! collection, and the `GET /metrics/history` document.
//!
//! The sampler (a thread [`spawn`](crate::spawn) runs every
//! `sample_interval_ms`, or [`Service::sample_now`](crate::Service)
//! directly) collects one [`Frame`] per tick — every monotone `/stats`
//! counter, per-endpoint 5xx counters and duration histograms, cache
//! and `/proc/self` gauges — into a [`SeriesRing`]. Everything
//! temporal is derived at read time from frame deltas: req/s,
//! error-ratio, cache-hit-ratio and windowed latency quantiles for
//! any trailing window the retention covers.
//!
//! `/metrics/history` renders compact JSON columns: one array entry
//! per retained interval, aligned across all arrays, `null` where an
//! interval saw no samples.

use tpn_obs::series::{Frame, SeriesRing, SeriesSchema};

use crate::analysis::ServiceError;
use crate::json::JsonWriter;
use crate::metrics::{ServiceMetrics, StatsSnapshot, ENDPOINTS};

/// The monotone service-wide counters each frame carries, in column
/// order. Gauge-like `/stats` numbers (entries, bytes, sessions) are
/// gauge columns instead.
pub(crate) const SERVICE_COUNTERS: [&str; 23] = [
    "requests",
    "computations",
    "hits",
    "misses",
    "coalesced",
    "evictions",
    "sweeps",
    "sweep_hits",
    "sweep_compiles",
    "sweep_points",
    "optimizes",
    "optimize_hits",
    "optimize_solves",
    "optimize_certified",
    "whatifs",
    "whatif_perturbations",
    "whatif_hits",
    "whatif_retimes",
    "whatif_rejects",
    "v1_envelopes",
    "session_hits",
    "session_misses",
    "session_evictions",
];

/// The gauge columns, in order: cache sizing, session count, then the
/// `/proc/self` process gauges.
pub(crate) const GAUGES: [&str; 6] = [
    "cache_entries",
    "cache_bytes",
    "sessions",
    "rss_bytes",
    "open_fds",
    "os_threads",
];

// Service-counter column indices the SLO engine and renderer read.
pub(crate) const COL_REQUESTS: usize = 0;
pub(crate) const COL_HITS: usize = 2;
pub(crate) const COL_MISSES: usize = 3;

// Gauge column indices.
pub(crate) const GAUGE_RSS: usize = 3;
pub(crate) const GAUGE_FDS: usize = 4;
pub(crate) const GAUGE_THREADS: usize = 5;

/// Counter column of one endpoint's 5xx responses (the error
/// dimension of its SLO window).
pub(crate) fn endpoint_error_col(endpoint: usize) -> usize {
    SERVICE_COUNTERS.len() + endpoint
}

/// Histogram column of one endpoint's request durations.
pub(crate) fn endpoint_hist_col(endpoint: usize) -> usize {
    endpoint
}

/// The frame layout every service ring uses.
pub(crate) fn schema() -> SeriesSchema {
    let mut counters: Vec<String> = SERVICE_COUNTERS.iter().map(|s| s.to_string()).collect();
    counters.extend(ENDPOINTS.iter().map(|e| format!("err.{}", e.name())));
    SeriesSchema {
        counters,
        gauges: GAUGES.iter().map(|s| s.to_string()).collect(),
        hists: ENDPOINTS.iter().map(|e| e.name().to_string()).collect(),
    }
}

/// Collect one frame from the live counters. `stats` must be freshly
/// snapshotted; `unix_ms` stamps the frame.
pub(crate) fn collect_frame(
    metrics: &ServiceMetrics,
    stats: &StatsSnapshot,
    unix_ms: u64,
) -> Frame {
    let proc = tpn_obs::procinfo::sample();
    let mut counters = vec![
        stats.requests,
        stats.computations,
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.evictions,
        stats.sweeps,
        stats.sweep_hits,
        stats.sweep_compiles,
        stats.sweep_points,
        stats.optimizes,
        stats.optimize_hits,
        stats.optimize_solves,
        stats.optimize_certified,
        stats.whatifs,
        stats.whatif_perturbations,
        stats.whatif_hits,
        stats.whatif_retimes,
        stats.whatif_rejects,
        stats.v1_envelopes,
        stats.session_hits,
        stats.session_misses,
        stats.session_evictions,
    ];
    debug_assert_eq!(counters.len(), SERVICE_COUNTERS.len());
    for (i, _) in ENDPOINTS.iter().enumerate() {
        counters.push(metrics.errors_5xx(i));
    }
    Frame {
        unix_ms,
        counters,
        gauges: vec![
            stats.entries as f64,
            stats.bytes as f64,
            stats.session_entries as f64,
            proc.rss_bytes as f64,
            proc.open_fds as f64,
            proc.threads as f64,
        ],
        hists: ENDPOINTS
            .iter()
            .map(|e| metrics.duration_snapshot(*e))
            .collect(),
    }
}

/// Validated `window`/`step` query parameters of `/metrics/history`.
pub(crate) fn validate_params(window_s: u64, step_s: u64) -> Result<(), ServiceError> {
    if window_s == 0 || window_s > 86_400 {
        return Err(ServiceError::BadRequest(format!(
            "window must be 1..=86400 seconds, got {window_s}"
        )));
    }
    if step_s == 0 || step_s > window_s {
        return Err(ServiceError::BadRequest(format!(
            "step must be 1..={window_s} seconds, got {step_s}"
        )));
    }
    if window_s / step_s > 2_000 {
        return Err(ServiceError::BadRequest(format!(
            "window/step = {} intervals exceeds the limit 2000",
            window_s / step_s
        )));
    }
    Ok(())
}

/// The frames the document derives intervals from: the retained
/// frames inside the window, decimated to `step` spacing, preceded by
/// the newest pre-window frame (the baseline the first interval's
/// deltas are taken against) when one exists.
fn select_frames(ring: &SeriesRing, now_ms: u64, window_s: u64, step_s: u64) -> Vec<Frame> {
    let cutoff = now_ms.saturating_sub(window_s.saturating_mul(1_000));
    let step_ms = step_s.saturating_mul(1_000);
    let all = ring.frames();
    let mut selected: Vec<Frame> = Vec::new();
    if let Some(baseline) = all.iter().rev().find(|f| f.unix_ms < cutoff) {
        selected.push(baseline.clone());
    }
    for f in all.into_iter().filter(|f| f.unix_ms >= cutoff) {
        match selected.last() {
            Some(prev) if f.unix_ms < prev.unix_ms.saturating_add(step_ms) => {}
            _ => selected.push(f),
        }
    }
    selected
}

/// The leaf column names `series=` may select, i.e. every array the
/// document can emit below the header block.
const SERIES_NAMES: [&str; 9] = [
    "req_s",
    "cache_hit_ratio",
    "rss_bytes",
    "open_fds",
    "threads",
    "err_s",
    "p50_ns",
    "p90_ns",
    "p99_ns",
];

/// The validated `series=` name filter: `None` selects everything, a
/// list selects only those leaf columns (the header block — `t_ms`,
/// `dt_s` and the counts — always renders).
pub(crate) struct SeriesFilter(Option<Vec<String>>);

impl SeriesFilter {
    /// Parse a comma-separated `series=` value; every name must be one
    /// of [`SERIES_NAMES`].
    pub(crate) fn parse(param: Option<&str>) -> Result<SeriesFilter, ServiceError> {
        let Some(param) = param else {
            return Ok(SeriesFilter(None));
        };
        let mut names = Vec::new();
        for name in param.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if !SERIES_NAMES.contains(&name) {
                return Err(ServiceError::BadRequest(format!(
                    "unknown series {name:?}; known: {}",
                    SERIES_NAMES.join(", ")
                )));
            }
            names.push(name.to_string());
        }
        Ok(SeriesFilter(Some(names)))
    }

    fn keeps(&self, name: &str) -> bool {
        match &self.0 {
            None => true,
            Some(names) => names.iter().any(|n| n == name),
        }
    }
}

/// Assemble the `GET /metrics/history?window=&step=&series=` document.
/// Columnar JSON: every array holds one entry per interval between
/// consecutively selected frames, aligned by index; quantile entries
/// are `null` for intervals without samples. Endpoints appear only
/// when they saw traffic inside the rendered span; `filter` drops
/// unselected leaf arrays so dashboards can fetch one column.
pub(crate) fn history_json(
    ring: &SeriesRing,
    now_ms: u64,
    window_s: u64,
    step_s: u64,
    filter: &SeriesFilter,
) -> Result<String, ServiceError> {
    validate_params(window_s, step_s)?;
    let frames = select_frames(ring, now_ms, window_s, step_s);
    let intervals: Vec<(&Frame, &Frame)> = frames.windows(2).map(|w| (&w[0], &w[1])).collect();
    let dt_s: Vec<f64> = intervals
        .iter()
        .map(|(a, b)| (b.unix_ms.saturating_sub(a.unix_ms)) as f64 / 1_000.0)
        .collect();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("now_ms");
    w.uint(now_ms);
    w.key("window_s");
    w.uint(window_s);
    w.key("step_s");
    w.uint(step_s);
    w.key("samples");
    w.uint(frames.len() as u64);
    w.key("t_ms");
    w.begin_array();
    for (_, b) in &intervals {
        w.uint(b.unix_ms);
    }
    w.end_array();
    w.key("dt_s");
    w.begin_array();
    for dt in &dt_s {
        w.float(*dt);
    }
    w.end_array();

    w.key("service");
    w.begin_object();
    if filter.keeps("req_s") {
        w.key("req_s");
        w.begin_array();
        for ((a, b), dt) in intervals.iter().zip(&dt_s) {
            rate(&mut w, b.counter_delta(a, COL_REQUESTS), *dt);
        }
        w.end_array();
    }
    if filter.keeps("cache_hit_ratio") {
        w.key("cache_hit_ratio");
        w.begin_array();
        for (a, b) in &intervals {
            let hits = b.counter_delta(a, COL_HITS);
            let total = hits + b.counter_delta(a, COL_MISSES);
            if total == 0 {
                w.null();
            } else {
                w.float(hits as f64 / total as f64);
            }
        }
        w.end_array();
    }
    w.end_object();

    w.key("process");
    w.begin_object();
    for (key, col) in [
        ("rss_bytes", GAUGE_RSS),
        ("open_fds", GAUGE_FDS),
        ("threads", GAUGE_THREADS),
    ] {
        if !filter.keeps(key) {
            continue;
        }
        w.key(key);
        w.begin_array();
        for (_, b) in &intervals {
            w.uint(b.gauges[col] as u64);
        }
        w.end_array();
    }
    w.end_object();

    w.key("endpoints");
    w.begin_object();
    for (i, endpoint) in ENDPOINTS.iter().enumerate() {
        let hist = endpoint_hist_col(i);
        let traffic: u64 = intervals
            .iter()
            .map(|(a, b)| b.hist_delta(a, hist).count())
            .sum();
        if traffic == 0 {
            continue;
        }
        w.key(endpoint.name());
        w.begin_object();
        if filter.keeps("req_s") {
            w.key("req_s");
            w.begin_array();
            for ((a, b), dt) in intervals.iter().zip(&dt_s) {
                rate(&mut w, b.hist_delta(a, hist).count(), *dt);
            }
            w.end_array();
        }
        if filter.keeps("err_s") {
            w.key("err_s");
            w.begin_array();
            for ((a, b), dt) in intervals.iter().zip(&dt_s) {
                rate(&mut w, b.counter_delta(a, endpoint_error_col(i)), *dt);
            }
            w.end_array();
        }
        for (key, q) in [("p50_ns", 0.50), ("p90_ns", 0.90), ("p99_ns", 0.99)] {
            if !filter.keeps(key) {
                continue;
            }
            w.key(key);
            w.begin_array();
            for (a, b) in &intervals {
                match b.hist_delta(a, hist).quantile_ns(q) {
                    Some(ns) => w.float(ns),
                    None => w.null(),
                }
            }
            w.end_array();
        }
        w.end_object();
    }
    w.end_object();
    w.end_object();
    Ok(w.finish())
}

/// One per-second rate entry: `null` on a zero-length interval (two
/// frames with the same timestamp cannot define a rate).
fn rate(w: &mut JsonWriter, delta: u64, dt_s: f64) {
    if dt_s <= 0.0 {
        w.null();
    } else {
        w.float(delta as f64 / dt_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Endpoint;

    fn ring_with(frames: &[Frame]) -> SeriesRing {
        let ring = SeriesRing::new(schema(), 32);
        for f in frames {
            ring.push(f);
        }
        ring
    }

    fn frame_at(metrics: &ServiceMetrics, requests: u64, ts: u64) -> Frame {
        let stats = StatsSnapshot {
            requests,
            hits: requests / 2,
            misses: requests - requests / 2,
            ..StatsSnapshot::default()
        };
        collect_frame(metrics, &stats, ts)
    }

    #[test]
    fn schema_shapes_match_collect_frame() {
        let m = ServiceMetrics::new(true);
        let s = schema();
        let f = frame_at(&m, 0, 1_000);
        assert_eq!(f.counters.len(), s.counters.len());
        assert_eq!(f.gauges.len(), s.gauges.len());
        assert_eq!(f.hists.len(), s.hists.len());
        assert_eq!(s.counter_index("requests"), Some(COL_REQUESTS));
        assert_eq!(s.counter_index("err.analyze"), Some(endpoint_error_col(0)));
        assert_eq!(s.gauge_index("rss_bytes"), Some(GAUGE_RSS));
        assert_eq!(s.hist_index("analyze"), Some(0));
    }

    #[test]
    fn params_are_validated() {
        assert!(validate_params(300, 5).is_ok());
        assert!(validate_params(0, 5).is_err());
        assert!(validate_params(100_000, 5).is_err());
        assert!(validate_params(300, 0).is_err());
        assert!(validate_params(300, 301).is_err());
        assert!(validate_params(86_400, 1).is_err()); // too many intervals
    }

    #[test]
    fn history_reconstructs_rates_from_deltas() {
        let m = ServiceMetrics::new(true);
        // 3 frames 1s apart: 0 → 10 → 30 requests, with matching
        // analyze-endpoint latency samples.
        let f0 = frame_at(&m, 0, 10_000);
        for _ in 0..10 {
            m.record(Endpoint::Analyze, 200, 2_000_000);
        }
        let f1 = frame_at(&m, 10, 11_000);
        for _ in 0..20 {
            m.record(Endpoint::Analyze, 200, 2_000_000);
        }
        let f2 = frame_at(&m, 30, 12_000);
        let ring = ring_with(&[f0, f1, f2]);
        let doc = history_json(&ring, 12_000, 10, 1, &SeriesFilter(None)).unwrap();
        crate::jsonval::Json::parse(&doc).expect("history document parses");
        assert!(doc.contains(r#""samples":3"#), "{doc}");
        // Interval rates: 10 req/s then 20 req/s.
        assert!(doc.contains(r#""req_s":[10,20]"#), "{doc}");
        // Only the analyze endpoint saw traffic.
        assert!(doc.contains(r#""analyze":"#), "{doc}");
        assert!(!doc.contains(r#""sweep":"#), "{doc}");
        // 2ms samples: every quantile interpolates inside (1ms, 2.5ms].
        assert!(doc.contains(r#""p99_ns":["#), "{doc}");
    }

    #[test]
    fn empty_intervals_render_null_quantiles() {
        let m = ServiceMetrics::new(true);
        m.record(Endpoint::Analyze, 200, 2_000_000);
        let f0 = frame_at(&m, 1, 10_000);
        let f1 = frame_at(&m, 1, 11_000); // no new samples
        let ring = ring_with(&[f0, f1]);
        let doc = history_json(&ring, 11_000, 10, 1, &SeriesFilter(None)).unwrap();
        // The single interval has traffic 0 → analyze is omitted, but
        // the service arrays still render.
        assert!(doc.contains(r#""req_s":[0]"#), "{doc}");
        assert!(doc.contains(r#""cache_hit_ratio":[null]"#), "{doc}");
    }

    #[test]
    fn series_filter_selects_leaf_columns() {
        let m = ServiceMetrics::new(true);
        let f0 = frame_at(&m, 0, 10_000);
        for _ in 0..10 {
            m.record(Endpoint::Analyze, 200, 2_000_000);
        }
        let f1 = frame_at(&m, 10, 11_000);
        let ring = ring_with(&[f0, f1]);
        let filter = SeriesFilter::parse(Some("req_s,p99_ns")).unwrap();
        let doc = history_json(&ring, 11_000, 10, 1, &filter).unwrap();
        crate::jsonval::Json::parse(&doc).expect("filtered document parses");
        assert!(doc.contains(r#""req_s":"#), "{doc}");
        assert!(doc.contains(r#""p99_ns":"#), "{doc}");
        assert!(!doc.contains(r#""cache_hit_ratio""#), "{doc}");
        assert!(!doc.contains(r#""rss_bytes""#), "{doc}");
        assert!(!doc.contains(r#""p50_ns""#), "{doc}");
        // The header block always renders.
        assert!(doc.contains(r#""t_ms":"#), "{doc}");
        // Unknown names are a 400, not a silent empty document.
        assert!(SeriesFilter::parse(Some("req_s,nope")).is_err());
    }

    #[test]
    fn decimation_respects_step() {
        let m = ServiceMetrics::new(true);
        let frames: Vec<Frame> = (0..10)
            .map(|i| frame_at(&m, i, 10_000 + i * 1_000))
            .collect();
        let ring = ring_with(&frames);
        // step=3s over a 9s window: frames at 10s, 13s, 16s, 19s.
        let selected = select_frames(&ring, 19_000, 9, 3);
        assert_eq!(
            selected.iter().map(|f| f.unix_ms).collect::<Vec<_>>(),
            vec![10_000, 13_000, 16_000, 19_000]
        );
    }
}
