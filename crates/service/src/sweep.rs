//! The parameter-sweep request: JSON grid spec in, rows out.
//!
//! A sweep request names a set of performance-measure **targets**, a
//! cartesian grid of **axes** over the net's timing/frequency symbols,
//! a **backend** (`f64` or exact) and optionally per-axis
//! **elasticities**. [`sweep_json`] is the single producer of sweep
//! JSON in the workspace — the HTTP `/sweep` endpoint and `tpn sweep`
//! both call it, so server and CLI output are byte-identical for the
//! same net and spec, and cached responses are byte-identical to fresh
//! ones.
//!
//! ## Spec schema
//!
//! ```json
//! {
//!   "targets": ["throughput:t7", "cycle_time"],
//!   "sweep": [
//!     {"symbol": "E(t3)", "from": "300", "to": "2000", "steps": 250},
//!     {"symbol": "f(t5)", "values": ["1/100", "1/20", "1/10", "1/5"]}
//!   ],
//!   "backend": "f64",
//!   "elasticity": false
//! }
//! ```
//!
//! Targets are `throughput:<transition>`, `place_utilization:<place>`,
//! `transition_utilization:<transition>` and `cycle_time`. Axis symbols
//! use the canonical attribute grammar `E(t)` / `F(t)` / `f(t)` of
//! [`tpn_net::symbols`]; rational values are JSON strings (`"1067/10"`,
//! `"106.7"`) or plain JSON numbers. The `HTTP` request body is this
//! object plus a `"net"` member carrying the `.tpn` text.
//!
//! ## Semantics and validity region
//!
//! The net is analysed through [`tpn_reach::LiftedDomain`]: the swept
//! attributes become symbols, every timing comparison is frozen at the
//! net's own base values, and the resulting closed forms are compiled
//! (`tpn-eval`) and evaluated over the grid. The response carries the
//! recorded validity `region`, and every row ends with an `in_region`
//! flag — the row's coordinates checked **exactly** against each
//! region constraint (`null` in the astronomically unlikely case that
//! the exact check overflows `i128`). Rows with `in_region: false` are
//! evaluations of the base-point expression, not of a re-derived
//! graph, and should be read accordingly.
//!
//! Results are cached under `(net digest, spec hash)` — see
//! [`spec_hash`], a 128-bit FNV pair over the canonical spec rendering.

use tpn_eval::{sweep_exact, sweep_f64, Axis, Grid, SweepOptions};
use tpn_net::{symbols, TimedPetriNet};
use tpn_rational::Rational;
use tpn_session::Session;
use tpn_symbolic::{Assignment, Constraint, Relation, Symbol};

use crate::analysis::ServiceError;
use crate::json::JsonWriter;
use crate::jsonval::Json;

/// Most axes a grid may have (the cartesian product explodes long
/// before this bound is interesting; it bounds spec parsing).
pub const MAX_AXES: usize = 8;

/// Most targets a request may name.
pub const MAX_TARGETS: usize = 64;

/// One performance-measure target of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetSpec {
    /// `throughput:<transition>`.
    Throughput(String),
    /// `place_utilization:<place>`.
    PlaceUtilization(String),
    /// `transition_utilization:<transition>`.
    TransitionUtilization(String),
    /// `cycle_time`.
    CycleTime,
}

impl TargetSpec {
    /// Parse the `kind:name` target grammar.
    pub fn parse(s: &str) -> Result<TargetSpec, ServiceError> {
        if s == "cycle_time" {
            return Ok(TargetSpec::CycleTime);
        }
        let (kind, name) = s.split_once(':').ok_or_else(|| {
            bad(format!(
                "target {s:?} is not 'cycle_time' or '<kind>:<name>'"
            ))
        })?;
        if name.is_empty() {
            return Err(bad(format!("target {s:?} names nothing")));
        }
        match kind {
            "throughput" => Ok(TargetSpec::Throughput(name.to_string())),
            "place_utilization" => Ok(TargetSpec::PlaceUtilization(name.to_string())),
            "transition_utilization" => Ok(TargetSpec::TransitionUtilization(name.to_string())),
            other => Err(bad(format!(
                "unknown target kind {other:?} (expected throughput, place_utilization, \
                 transition_utilization or cycle_time)"
            ))),
        }
    }

    /// The canonical `kind:name` rendering (identity of the column).
    pub fn canonical(&self) -> String {
        match self {
            TargetSpec::Throughput(n) => format!("throughput:{n}"),
            TargetSpec::PlaceUtilization(n) => format!("place_utilization:{n}"),
            TargetSpec::TransitionUtilization(n) => format!("transition_utilization:{n}"),
            TargetSpec::CycleTime => "cycle_time".to_string(),
        }
    }
}

/// The values one axis takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxisValues {
    /// `steps` evenly spaced values from `from` to `to` inclusive.
    Linear {
        /// First value.
        from: Rational,
        /// Last value.
        to: Rational,
        /// Number of points (≥ 1).
        steps: u64,
    },
    /// An explicit value list.
    List(Vec<Rational>),
}

/// One sweep axis: a canonical attribute symbol name and its values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisSpec {
    /// Canonical symbol name, e.g. `"E(t3)"`.
    pub symbol: String,
    /// The values the axis takes.
    pub values: AxisValues,
}

/// The evaluation backend of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepBackend {
    /// Compiled double-precision floats (the fast path).
    F64,
    /// Compiled exact rationals (overflow-checked).
    Exact,
}

impl SweepBackend {
    fn name(self) -> &'static str {
        match self {
            SweepBackend::F64 => "f64",
            SweepBackend::Exact => "exact",
        }
    }
}

/// A parsed, validated sweep specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// The measures to evaluate, in column order.
    pub targets: Vec<TargetSpec>,
    /// The grid axes, outermost first (last axis varies fastest).
    pub axes: Vec<AxisSpec>,
    /// Evaluation backend.
    pub backend: SweepBackend,
    /// Also emit per-axis elasticities `(s/f)·∂f/∂s` for every target.
    pub elasticity: bool,
}

pub(crate) fn bad(m: impl Into<String>) -> ServiceError {
    ServiceError::BadRequest(m.into())
}

/// Convert a JSON string or number to an exact rational.
pub(crate) fn rational_value(j: &Json, what: &str) -> Result<Rational, ServiceError> {
    let token = match j {
        Json::Str(s) => s.as_str(),
        Json::Num(n) => n.as_str(),
        other => {
            return Err(bad(format!(
                "{what} must be a number, got {}",
                other.kind()
            )))
        }
    };
    token
        .parse::<Rational>()
        .map_err(|e| bad(format!("{what}: {e}")))
}

pub(crate) fn u64_value(j: &Json, what: &str) -> Result<u64, ServiceError> {
    j.as_num()
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| bad(format!("{what} must be a non-negative integer")))
}

impl SweepSpec {
    /// Parse a spec from a JSON object. A `"net"` member is ignored
    /// here (the HTTP endpoint carries the net text in-body); any other
    /// unknown member is rejected so typos cannot silently change the
    /// request's meaning.
    pub fn from_json(doc: &Json) -> Result<SweepSpec, ServiceError> {
        let members = doc
            .as_obj()
            .ok_or_else(|| bad(format!("spec must be an object, got {}", doc.kind())))?;
        for (k, _) in members {
            if !matches!(
                k.as_str(),
                "net" | "targets" | "sweep" | "backend" | "elasticity"
            ) {
                return Err(bad(format!("unknown spec member {k:?}")));
            }
        }
        let targets_json = doc
            .get("targets")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("spec needs a \"targets\" array"))?;
        if targets_json.is_empty() {
            return Err(bad("\"targets\" must not be empty"));
        }
        if targets_json.len() > MAX_TARGETS {
            return Err(bad(format!("more than {MAX_TARGETS} targets")));
        }
        let mut targets = Vec::with_capacity(targets_json.len());
        for t in targets_json {
            let s = t
                .as_str()
                .ok_or_else(|| bad(format!("targets must be strings, got {}", t.kind())))?;
            let parsed = TargetSpec::parse(s)?;
            if targets.contains(&parsed) {
                return Err(bad(format!("duplicate target {s:?}")));
            }
            targets.push(parsed);
        }
        let axes_json = doc
            .get("sweep")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("spec needs a \"sweep\" array of axes"))?;
        if axes_json.is_empty() {
            return Err(bad("\"sweep\" must have at least one axis"));
        }
        if axes_json.len() > MAX_AXES {
            return Err(bad(format!("more than {MAX_AXES} sweep axes")));
        }
        let mut axes = Vec::with_capacity(axes_json.len());
        for a in axes_json {
            axes.push(Self::axis_from_json(a)?);
        }
        let backend = match doc.get("backend") {
            None => SweepBackend::F64,
            Some(Json::Str(s)) if s == "f64" => SweepBackend::F64,
            Some(Json::Str(s)) if s == "exact" => SweepBackend::Exact,
            Some(other) => {
                return Err(bad(format!(
                    "backend must be \"f64\" or \"exact\", got {}",
                    match other {
                        Json::Str(s) => format!("{s:?}"),
                        v => v.kind().to_string(),
                    }
                )))
            }
        };
        let elasticity = match doc.get("elasticity") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| bad("elasticity must be a boolean"))?,
        };
        Ok(SweepSpec {
            targets,
            axes,
            backend,
            elasticity,
        })
    }

    fn axis_from_json(a: &Json) -> Result<AxisSpec, ServiceError> {
        let members = a
            .as_obj()
            .ok_or_else(|| bad(format!("each axis must be an object, got {}", a.kind())))?;
        for (k, _) in members {
            if !matches!(k.as_str(), "symbol" | "from" | "to" | "steps" | "values") {
                return Err(bad(format!("unknown axis member {k:?}")));
            }
        }
        let symbol = a
            .get("symbol")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("each axis needs a \"symbol\" string"))?
            .to_string();
        let has_linear =
            a.get("from").is_some() || a.get("to").is_some() || a.get("steps").is_some();
        let has_list = a.get("values").is_some();
        match (has_linear, has_list) {
            (true, true) => Err(bad(format!(
                "axis {symbol:?} mixes from/to/steps with values"
            ))),
            (false, false) => Err(bad(format!(
                "axis {symbol:?} needs from/to/steps or values"
            ))),
            (true, false) => {
                let from = rational_value(
                    a.get("from")
                        .ok_or_else(|| bad(format!("axis {symbol:?} is missing \"from\"")))?,
                    "from",
                )?;
                let to = rational_value(
                    a.get("to")
                        .ok_or_else(|| bad(format!("axis {symbol:?} is missing \"to\"")))?,
                    "to",
                )?;
                let steps = u64_value(
                    a.get("steps")
                        .ok_or_else(|| bad(format!("axis {symbol:?} is missing \"steps\"")))?,
                    "steps",
                )?;
                if steps == 0 {
                    return Err(bad(format!("axis {symbol:?} has zero steps")));
                }
                Ok(AxisSpec {
                    symbol,
                    values: AxisValues::Linear { from, to, steps },
                })
            }
            (false, true) => {
                let vals = a
                    .get("values")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad(format!("axis {symbol:?}: \"values\" must be an array")))?;
                if vals.is_empty() {
                    return Err(bad(format!("axis {symbol:?} has no values")));
                }
                let values = vals
                    .iter()
                    .map(|v| rational_value(v, "axis value"))
                    .collect::<Result<Vec<Rational>, ServiceError>>()?;
                Ok(AxisSpec {
                    symbol,
                    values: AxisValues::List(values),
                })
            }
        }
    }

    /// The canonical one-line JSON rendering of the spec: fixed member
    /// order, rationals in reduced `n/d` form, defaults materialised.
    /// Two specs with the same canonical form are the same request —
    /// this string is what [`spec_hash`] fingerprints.
    pub fn canonical(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("targets");
        w.begin_array();
        for t in &self.targets {
            w.string(&t.canonical());
        }
        w.end_array();
        w.key("sweep");
        w.begin_array();
        for a in &self.axes {
            w.begin_object();
            w.key("symbol");
            w.string(&a.symbol);
            match &a.values {
                AxisValues::Linear { from, to, steps } => {
                    w.key("from");
                    w.rational(from);
                    w.key("to");
                    w.rational(to);
                    w.key("steps");
                    w.uint(*steps);
                }
                AxisValues::List(values) => {
                    w.key("values");
                    w.begin_array();
                    for v in values {
                        w.rational(v);
                    }
                    w.end_array();
                }
            }
            w.end_object();
        }
        w.end_array();
        w.key("backend");
        w.string(self.backend.name());
        w.key("elasticity");
        w.bool(self.elasticity);
        w.end_object();
        w.finish()
    }
}

impl crate::spec::Spec for SweepSpec {
    fn canonical(&self) -> String {
        SweepSpec::canonical(self)
    }
}

// `spec_hash` started life here; it now lives in [`crate::spec`] shared
// by every spec-carrying request kind. Re-exported for compatibility.
pub use crate::spec::spec_hash;

/// The per-row `in_region` evaluator: region constraints with their
/// coefficients pre-aligned to the sweep's axis order, so the render
/// loop pays one overflow-checked multiply-add per *non-zero*
/// coefficient per row — no per-row `Assignment` allocation, no
/// coefficient lookups.
pub(crate) struct RegionEval {
    /// `(constant, one coefficient per axis, relation)` per constraint.
    rows: Vec<(Rational, Vec<Rational>, Relation)>,
}

impl RegionEval {
    /// Align `constraints` to `swept` (the axis order rows decode in).
    /// Constraint symbols are always lifted symbols, hence axes.
    pub(crate) fn new(constraints: &[Constraint], swept: &[Symbol]) -> RegionEval {
        let rows = constraints
            .iter()
            .map(|c| {
                let coeffs = swept.iter().map(|&s| c.expr.coeff(s)).collect();
                (*c.expr.constant_part(), coeffs, c.rel)
            })
            .collect();
        RegionEval { rows }
    }

    /// Exact membership of one row's coordinates, with overflow-checked
    /// arithmetic (a hostile coordinate must not panic a worker):
    /// `None` (rendered as JSON `null`) when a check itself overflows.
    pub(crate) fn in_region(&self, coords: &[Rational]) -> Option<bool> {
        let mut all = true;
        for (constant, coeffs, rel) in &self.rows {
            let mut acc = *constant;
            for (coeff, value) in coeffs.iter().zip(coords) {
                if coeff.is_zero() {
                    continue;
                }
                let term = coeff.checked_mul(value).ok()?;
                acc = acc.checked_add(&term).ok()?;
            }
            let holds = match rel {
                Relation::Eq => acc.is_zero(),
                Relation::Ge => !acc.is_negative(),
                Relation::Gt => acc.is_positive(),
            };
            if !holds {
                all = false;
            }
        }
        Some(all)
    }
}

/// Resolve a canonical attribute-symbol name against the net *without*
/// interning unmatched input (the interner is process-global; a flood
/// of bogus axis names must not grow it).
pub(crate) fn resolve_symbol(net: &TimedPetriNet, name: &str) -> Result<Symbol, ServiceError> {
    for t in net.transitions() {
        let tn = net.transition(t).name();
        if name == format!("E({tn})") {
            return Ok(symbols::enabling(tn));
        }
        if name == format!("F({tn})") {
            return Ok(symbols::firing(tn));
        }
        if name == format!("f({tn})") {
            return Ok(symbols::frequency(tn));
        }
    }
    Err(bad(format!(
        "axis symbol {name:?} names no attribute of net {:?} \
         (expected E(t), F(t) or f(t) for one of its transitions)",
        net.name()
    )))
}

pub(crate) fn resolve_target(
    net: &TimedPetriNet,
    t: &TargetSpec,
) -> Result<tpn_core::ExprTarget, ServiceError> {
    use tpn_core::ExprTarget;
    match t {
        TargetSpec::Throughput(n) => net
            .transition_by_name(n)
            .map(ExprTarget::Throughput)
            .map_err(|e| bad(e.to_string())),
        TargetSpec::TransitionUtilization(n) => net
            .transition_by_name(n)
            .map(ExprTarget::TransitionUtilization)
            .map_err(|e| bad(e.to_string())),
        TargetSpec::PlaceUtilization(n) => net
            .place_by_name(n)
            .map(ExprTarget::PlaceUtilization)
            .map_err(|e| bad(e.to_string())),
        TargetSpec::CycleTime => Ok(ExprTarget::CycleTime),
    }
}

/// Execute a sweep through `session` and render the response document.
/// Returns the JSON body and the number of grid points evaluated. Each
/// row is `[[coords…], [values…], in_region]`; the trailing flag is
/// the row's coordinates checked exactly against every recorded
/// validity constraint. Thread count and point cap come from the
/// session's [`SessionOptions`](tpn_session::SessionOptions).
/// Deterministic: identical nets (by digest) and identical canonical
/// specs produce byte-identical documents at any thread count, which
/// makes the result cacheable and the CLI output comparable to the
/// server's — and the lift + compiled program are session artifacts,
/// shared with every other request over the same net.
pub fn sweep_json(session: &Session, spec: &SweepSpec) -> Result<(String, u64), ServiceError> {
    let _span = tpn_obs::trace::span("render");
    let net = session.net();
    let threads = session.options().threads_or_default();
    let max_points = session.options().max_points_or_default();
    // Resolve names against the net before any expensive work.
    let swept: Vec<Symbol> = spec
        .axes
        .iter()
        .map(|a| resolve_symbol(net, &a.symbol))
        .collect::<Result<_, _>>()?;
    let exprs_targets: Vec<tpn_core::ExprTarget> = spec
        .targets
        .iter()
        .map(|t| resolve_target(net, t))
        .collect::<Result<_, _>>()?;
    // Enforce the point cap on the declared axis sizes *before* any
    // value is materialised: a hostile `"steps": 2^40` must be a cheap
    // 400, not a terabyte allocation inside Axis::linear.
    let declared_points = spec.axes.iter().fold(1u64, |acc, a| {
        let len = match &a.values {
            AxisValues::Linear { steps, .. } => *steps,
            AxisValues::List(values) => values.len() as u64,
        };
        acc.saturating_mul(len.max(1))
    });
    if declared_points > max_points {
        return Err(bad(format!(
            "grid has {declared_points} points, more than the limit {max_points}"
        )));
    }
    let axes: Vec<Axis> = spec
        .axes
        .iter()
        .zip(&swept)
        .map(|(a, &sym)| match &a.values {
            // `steps <= max_points` here, so the usize conversion and
            // the allocation are both bounded.
            AxisValues::Linear { from, to, steps } => {
                Axis::try_linear(sym, *from, *to, *steps as usize).map_err(|e| bad(e.to_string()))
            }
            AxisValues::List(values) => Ok(Axis::list(sym, values.clone())),
        })
        .collect::<Result<_, _>>()?;
    let grid = Grid::new(axes).map_err(|e| bad(e.to_string()))?;

    // Derive the closed forms through the numerically guided lift and
    // compile them (with derivatives if elasticities are requested) —
    // both memoized session artifacts, shared across requests.
    let artifact = session
        .compiled(&swept, &exprs_targets, spec.elasticity)
        .map_err(|e| ServiceError::Analysis(e.to_string()))?;
    let compiled = &artifact.program;
    // One pass over the region (retained inside the compiled artifact,
    // so a compiled hit never re-demands the lift): the strings feed
    // the response header, the constraints the per-row evaluator.
    let (region_texts, region_constraints): (Vec<String>, Vec<Constraint>) =
        artifact.lifted.domain.region_entries().into_iter().unzip();
    let region_eval = RegionEval::new(&region_constraints, &swept);

    let opts = SweepOptions {
        threads,
        max_points,
    };
    let fixed = Assignment::new(); // every free symbol is an axis

    let n_targets = spec.targets.len();
    let n_axes = swept.len();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("kind");
    w.string("sweep");
    w.key("net");
    w.string(net.name());
    w.key("digest");
    w.string(&net.digest().to_hex());
    w.key("spec_hash");
    w.string(&format!("{:032x}", spec_hash(&spec.canonical())));
    w.key("backend");
    w.string(spec.backend.name());
    w.key("elasticity");
    w.bool(spec.elasticity);
    w.key("compiled_ops");
    w.uint(compiled.num_ops() as u64);
    w.key("region");
    w.begin_array();
    for c in &region_texts {
        w.string(c);
    }
    w.end_array();
    w.key("axes");
    w.begin_array();
    for a in &spec.axes {
        w.string(&a.symbol);
    }
    w.end_array();
    w.key("columns");
    w.begin_array();
    for t in &spec.targets {
        w.string(&t.canonical());
    }
    if spec.elasticity {
        for t in &spec.targets {
            for a in &spec.axes {
                w.string(&format!("elast:{}:{}", t.canonical(), a.symbol));
            }
        }
    }
    w.end_array();
    w.key("points");
    w.uint(grid.num_points());
    w.key("rows");
    w.begin_array();
    let mut coords: Vec<Rational> = Vec::new();
    match spec.backend {
        SweepBackend::F64 => {
            let rows = sweep_f64(compiled, &grid, &fixed, &opts).map_err(|e| bad(e.to_string()))?;
            for (i, row) in rows.iter().enumerate() {
                grid.point(i as u64, &mut coords);
                w.begin_array();
                w.begin_array();
                for c in &coords {
                    w.rational(c);
                }
                w.end_array();
                w.begin_array();
                for v in &row[..n_targets] {
                    match v {
                        Some(x) => w.float(*x),
                        None => w.null(),
                    }
                }
                if spec.elasticity {
                    for (ti, _) in spec.targets.iter().enumerate() {
                        for ai in 0..n_axes {
                            let value = row[ti];
                            let deriv = row[n_targets + ti * n_axes + ai];
                            match (value, deriv) {
                                (Some(v), Some(d)) if v != 0.0 => {
                                    w.float(coords[ai].to_f64() * d / v)
                                }
                                _ => w.null(),
                            }
                        }
                    }
                }
                w.end_array();
                match region_eval.in_region(&coords) {
                    Some(flag) => w.bool(flag),
                    None => w.null(),
                }
                w.end_array();
            }
        }
        SweepBackend::Exact => {
            let rows =
                sweep_exact(compiled, &grid, &fixed, &opts).map_err(|e| bad(e.to_string()))?;
            for (i, row) in rows.iter().enumerate() {
                grid.point(i as u64, &mut coords);
                w.begin_array();
                w.begin_array();
                for c in &coords {
                    w.rational(c);
                }
                w.end_array();
                w.begin_array();
                for v in &row[..n_targets] {
                    match v {
                        Some(x) => w.rational(x),
                        None => w.null(),
                    }
                }
                if spec.elasticity {
                    for (ti, _) in spec.targets.iter().enumerate() {
                        for ai in 0..n_axes {
                            let elast = match (&row[ti], &row[n_targets + ti * n_axes + ai]) {
                                (Some(v), Some(d)) if !v.is_zero() => coords[ai]
                                    .checked_mul(d)
                                    .and_then(|xd| xd.checked_div(v))
                                    .ok(),
                                _ => None,
                            };
                            match elast {
                                Some(e) => w.rational(&e),
                                None => w.null(),
                            }
                        }
                    }
                }
                w.end_array();
                match region_eval.in_region(&coords) {
                    Some(flag) => w.bool(flag),
                    None => w.null(),
                }
                w.end_array();
            }
        }
    }
    w.end_array();
    w.end_object();
    Ok((w.finish(), grid.num_points()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_session::SessionOptions;

    /// A one-shot session with an explicit thread count and point cap.
    fn sess(net: TimedPetriNet, threads: usize, max_points: u64) -> Session {
        Session::new(
            net,
            SessionOptions::new()
                .threads(threads)
                .max_points(max_points),
        )
    }

    fn spec_doc(extra: &str) -> Json {
        let text = format!(
            r#"{{"targets":["throughput:go"],"sweep":[{{"symbol":"F(go)","from":"1","to":"2","steps":5}}]{extra}}}"#
        );
        Json::parse(&text).unwrap()
    }

    #[test]
    fn spec_parses_and_canonicalises() {
        let spec = SweepSpec::from_json(&spec_doc("")).unwrap();
        assert_eq!(spec.targets, vec![TargetSpec::Throughput("go".into())]);
        assert_eq!(spec.backend, SweepBackend::F64);
        assert!(!spec.elasticity);
        let canon = spec.canonical();
        assert_eq!(
            canon,
            r#"{"targets":["throughput:go"],"sweep":[{"symbol":"F(go)","from":"1","to":"2","steps":5}],"backend":"f64","elasticity":false}"#
        );
        // defaults materialise: an explicit backend hashes identically
        let spec2 = SweepSpec::from_json(&spec_doc(r#","backend":"f64""#)).unwrap();
        assert_eq!(spec_hash(&canon), spec_hash(&spec2.canonical()));
        // a different spec hashes differently
        let spec3 = SweepSpec::from_json(&spec_doc(r#","backend":"exact""#)).unwrap();
        assert_ne!(spec_hash(&canon), spec_hash(&spec3.canonical()));
    }

    #[test]
    fn spec_rejects_malformed_requests() {
        for (doc, why) in [
            (r#"{"sweep":[]}"#, "missing targets"),
            (r#"{"targets":[],"sweep":[]}"#, "empty targets"),
            (r#"{"targets":["throughput:x"],"sweep":[]}"#, "no axes"),
            (
                r#"{"targets":["bogus:x"],"sweep":[{"symbol":"F(x)","values":["1"]}]}"#,
                "unknown target kind",
            ),
            (
                r#"{"targets":["throughput:x"],"sweep":[{"symbol":"F(x)"}]}"#,
                "axis without values",
            ),
            (
                r#"{"targets":["throughput:x"],"sweep":[{"symbol":"F(x)","from":"1","to":"2","steps":3,"values":["1"]}]}"#,
                "axis with both forms",
            ),
            (
                r#"{"targets":["throughput:x"],"sweep":[{"symbol":"F(x)","values":["1"]}],"surprise":1}"#,
                "unknown member",
            ),
            (
                r#"{"targets":["throughput:x","throughput:x"],"sweep":[{"symbol":"F(x)","values":["1"]}]}"#,
                "duplicate target",
            ),
        ] {
            let doc = Json::parse(doc).unwrap();
            assert!(SweepSpec::from_json(&doc).is_err(), "{why}");
        }
    }

    #[test]
    fn sweep_json_runs_the_cycle_net() {
        let net = tpn_net::parse_tpn(
            "net c\nplace a init 1\nplace b\n\
             trans go in a out b firing 2\ntrans back in b out a firing 3",
        )
        .unwrap();
        let spec = SweepSpec::from_json(&spec_doc("")).unwrap();
        let (body, points) = sweep_json(&sess(net.clone(), 2, 1000), &spec).unwrap();
        assert_eq!(points, 5);
        assert!(
            body.starts_with(r#"{"kind":"sweep","net":"c","digest":""#),
            "{body}"
        );
        // throughput of the 2-transition cycle is 1/(F(go)+3): at
        // F(go)=1 it is 0.25, at F(go)=2 (base) 0.2; the conflict-free
        // cycle records no comparisons, so every row is in-region
        assert!(body.contains(r#"[["1"],[0.25],true]"#), "{body}");
        assert!(body.contains(r#"[["2"],[0.2],true]"#), "{body}");
        // exact backend agrees exactly
        let exact = SweepSpec {
            backend: SweepBackend::Exact,
            ..spec
        };
        let (ebody, _) = sweep_json(&sess(net.clone(), 2, 1000), &exact).unwrap();
        assert!(ebody.contains(r#"[["1"],["1/4"],true]"#), "{ebody}");
        assert!(ebody.contains(r#"[["2"],["1/5"],true]"#), "{ebody}");
    }

    #[test]
    fn sweep_json_validates_against_the_net() {
        let net = tpn_net::parse_tpn(
            "net c\nplace a init 1\nplace b\n\
             trans go in a out b firing 2\ntrans back in b out a firing 3",
        )
        .unwrap();
        // unknown axis symbol
        let doc = Json::parse(
            r#"{"targets":["throughput:go"],"sweep":[{"symbol":"F(nope)","values":["1"]}]}"#,
        )
        .unwrap();
        let spec = SweepSpec::from_json(&doc).unwrap();
        let e = sweep_json(&sess(net.clone(), 1, 1000), &spec).unwrap_err();
        assert_eq!(e.status(), 400);
        // unknown target transition
        let doc = Json::parse(
            r#"{"targets":["throughput:nope"],"sweep":[{"symbol":"F(go)","values":["1"]}]}"#,
        )
        .unwrap();
        let spec = SweepSpec::from_json(&doc).unwrap();
        assert_eq!(
            sweep_json(&sess(net.clone(), 1, 1000), &spec)
                .unwrap_err()
                .status(),
            400
        );
        // point cap
        let spec = SweepSpec::from_json(&spec_doc("")).unwrap();
        let e = sweep_json(&sess(net.clone(), 1, 4), &spec).unwrap_err();
        assert!(e.to_string().contains("5 points"), "{e}");
    }

    #[test]
    fn hostile_grids_are_rejected_before_any_work() {
        let net = tpn_net::parse_tpn(
            "net c\nplace a init 1\nplace b\n\
             trans go in a out b firing 2\ntrans back in b out a firing 3",
        )
        .unwrap();
        // 2^40 steps must be a cheap 400, not a terabyte allocation.
        let doc = Json::parse(
            r#"{"targets":["throughput:go"],"sweep":[{"symbol":"F(go)","from":"0","to":"1","steps":1099511627776}]}"#,
        )
        .unwrap();
        let spec = SweepSpec::from_json(&doc).unwrap();
        let e = sweep_json(&sess(net.clone(), 1, 1000), &spec).unwrap_err();
        assert_eq!(e.status(), 400);
        assert!(e.to_string().contains("1099511627776"), "{e}");
        // endpoints near i128::MAX must error, not panic a worker
        let doc = Json::parse(
            r#"{"targets":["throughput:go"],"sweep":[{"symbol":"F(go)","from":"1/3","to":"170141183460469231731687303715884105727","steps":2}]}"#,
        )
        .unwrap();
        let spec = SweepSpec::from_json(&doc).unwrap();
        let e = sweep_json(&sess(net.clone(), 1, 1000), &spec).unwrap_err();
        assert_eq!(e.status(), 400);
        assert!(e.to_string().contains("overflows"), "{e}");
    }

    #[test]
    fn elasticity_columns_are_emitted() {
        let net = tpn_net::parse_tpn(
            "net c\nplace a init 1\nplace b\n\
             trans go in a out b firing 2\ntrans back in b out a firing 3",
        )
        .unwrap();
        let spec = SweepSpec::from_json(&spec_doc(r#","elasticity":true"#)).unwrap();
        let (body, _) = sweep_json(&sess(net.clone(), 1, 1000), &spec).unwrap();
        assert!(body.contains(r#""columns":["throughput:go","elast:throughput:go:F(go)"]"#));
        // T = 1/(x+3): elasticity = -x/(x+3); at x=1 that is -0.25
        assert!(body.contains(r#"[["1"],[0.25,-0.25],true]"#), "{body}");
    }
}
