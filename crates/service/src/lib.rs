//! `tpn-service` — the analysis daemon.
//!
//! Every `tpn` CLI invocation re-parses its net and re-runs the full
//! exact pipeline from scratch. This crate turns the workspace into a
//! *serving* system: a request/response front end where repeated and
//! concurrent analyses of the same net are answered from a
//! content-addressed result cache. Layers, bottom-up:
//!
//! | module | contents |
//! |---|---|
//! | [`json`] | compact hand-rolled JSON writer (std-only, no serde) |
//! | [`jsonval`] | minimal JSON parser (the `/sweep` request body) |
//! | [`analysis`] | request kinds and their JSON renderings |
//! | [`spec`] | the [`Spec`] trait: canonical spec rendering + 128-bit hash |
//! | [`sweep`] | parameter-sweep specs and the compiled sweep executor |
//! | [`optimize`] | parameter-synthesis specs and the certified optimizer front end |
//! | [`whatif`] | incremental what-if batches re-timed through one shared lift |
//! | [`sessions`] | per-digest [`tpn_session::Session`] tier: shared pipeline artifacts |
//! | [`v1`] | the unified `POST /v1` envelope: many analyses, one session |
//! | [`cache`] | sharded LRU result cache keyed by [`tpn_net::NetDigest`], with request coalescing |
//! | [`metrics`] | per-endpoint latency histograms, `GET /metrics` exposition, request-trace ring |
//! | [`history`] | time-series retention ring + the `GET /metrics/history` document |
//! | [`slo`] | per-endpoint objectives, burn-rate health, `GET /slo` and the graded `/healthz` |
//! | [`alerts`] | declarative alert rules over the retention ring, `GET /alerts`, silences, webhook notifier |
//! | [`executor`] | fixed thread pool over a bounded work queue |
//! | [`http`] | hand-rolled HTTP/1.1 server over [`std::net::TcpListener`] |
//! | `aio_server` | epoll listener (Linux): keep-alive, pipelining, admission control, streamed responses |
//!
//! Caching is **two-tier**. The body tier is keyed by
//! `(net content digest, request kind)`: the digest is
//! declaration-order-independent, so any `.tpn` text describing the
//! same net shares a cache line, and concurrent identical requests are
//! coalesced into a single pipeline execution. Underneath it, the
//! session tier holds one memoizing [`tpn_session::Session`] per
//! digest, so requests of *different* kinds against the same net still
//! share the expensive pipeline artifacts (TRG, lifted domain,
//! compiled program) even though their bodies are distinct cache
//! entries.
//!
//! # In-process use
//!
//! ```
//! use tpn_service::{RequestKind, Service, ServiceConfig};
//!
//! let service = Service::new(ServiceConfig::default());
//! let net = "net c\nplace a init 1\nplace b\n\
//!            trans go in a out b firing 2\ntrans back in b out a firing 3";
//! let (status, body) = service.respond(RequestKind::Analyze, net);
//! assert_eq!(status, 200);
//! assert!(body.contains("\"total_weight\":\"5\""));
//! // the second request is a cache hit: byte-identical, no recompute
//! let (_, again) = service.respond(RequestKind::Analyze, net);
//! assert_eq!(body, again);
//! assert_eq!(service.cache().stats().computations, 1);
//! ```
//!
//! # As a daemon
//!
//! ```no_run
//! use std::sync::Arc;
//! use tpn_service::{spawn, Service, ServiceConfig};
//!
//! let service = Arc::new(Service::new(ServiceConfig::default()));
//! let handle = spawn(service, "127.0.0.1:7070").unwrap();
//! println!("serving on {}", handle.addr());
//! handle.wait(); // forever (shutdown comes from dropping the handle)
//! ```

#[cfg(all(target_os = "linux", feature = "aio-epoll"))]
pub(crate) mod aio_server;
pub mod alerts;
pub mod analysis;
pub mod cache;
pub mod executor;
pub mod history;
pub mod http;
pub mod json;
pub mod jsonval;
pub mod metrics;
pub mod optimize;
pub mod sessions;
pub mod slo;
pub mod spec;
pub mod sweep;
pub mod v1;
pub mod whatif;

pub use alerts::{AlertsConfig, RuleSpec, Silence, WebhookConfig};
pub use analysis::{
    run, run_with_session, RequestKind, ServiceError, DEFAULT_SIM_EVENTS, DEFAULT_SIM_SEED,
};
pub use cache::{AnalysisCache, CacheConfig, CacheKey, CacheStats};
pub use executor::{PoolClosed, ThreadPool};
pub use http::{spawn, AioConfig, IoMode, LogConfig, ServerHandle, Service, ServiceConfig};
pub use jsonval::Json;
pub use metrics::{
    ConnScalars, ConnStats, Endpoint, RequestTrace, ServiceMetrics, SlowTrace, SLOW_RING_CAP,
    TRACE_RING_CAP,
};
pub use optimize::{optimize_json, BoxAxisSpec, OptimizeSpec};
pub use sessions::{SessionCache, SessionCacheStats};
pub use slo::{SloConfig, DEFAULT_OBJECTIVE};
pub use spec::Spec;
pub use sweep::{spec_hash, sweep_json, SweepBackend, SweepSpec};
pub use v1::{parse_envelope, V1Request, MAX_V1_REQUESTS};
pub use whatif::{WhatifSpec, MAX_PERTURBATIONS, MAX_WHATIF_REQUESTS};
