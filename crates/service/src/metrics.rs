//! Service-level observability: per-endpoint request metrics, the
//! Prometheus `GET /metrics` document, and the `/debug/requests`
//! trace ring.
//!
//! [`ServiceMetrics`] is the recording half: a fixed
//! `endpoint × status` matrix of relaxed counters, one
//! [`Histogram`] of request durations per endpoint, and a bounded
//! ring of the most recent requests' span traces. Everything on the
//! record path is lock-free except the trace ring push (a short
//! `Mutex`'d `VecDeque` rotation), and the whole layer collapses to a
//! no-op when the service is configured with `metrics: false` — the
//! comparison arm of the overhead bench.
//!
//! `render` (crate-private) is the reading half: it assembles the whole exposition
//! document in one fixed order (build info, uptime, request counters,
//! request-duration histograms, per-stage build histograms, then
//! every `/stats` counter as a `tpn_*` family), so a fixed counter
//! state renders byte-identically and the output is checkable by
//! `tpn_obs::validate`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tpn_obs::hist::{Histogram, HistogramSnapshot};
use tpn_obs::trace::Span;
use tpn_obs::Renderer;
use tpn_session::{StageCounters, STAGES};

use crate::analysis::RequestKind;
use crate::json::JsonWriter;

/// Every request surface the service distinguishes in its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /analyze` (and the `analyze` kind everywhere).
    Analyze,
    /// `POST /graph`.
    Graph,
    /// `POST /correctness`.
    Correctness,
    /// `POST /invariants`.
    Invariants,
    /// `POST /simulate`.
    Simulate,
    /// `POST /sweep`.
    Sweep,
    /// `POST /optimize`.
    Optimize,
    /// `POST /whatif`.
    Whatif,
    /// `POST /v1` (the envelope itself, not its sub-requests — those
    /// are answered through the same cached paths but belong to the
    /// envelope's trace).
    V1,
    /// `GET /healthz`.
    Healthz,
    /// `GET /stats`.
    Stats,
    /// `GET /metrics`.
    Metrics,
    /// `GET /debug/requests`.
    DebugRequests,
    /// `GET /metrics/history`.
    MetricsHistory,
    /// `GET /slo`.
    Slo,
    /// `GET /debug/slow`.
    DebugSlow,
    /// `GET /alerts`.
    Alerts,
    /// `POST /alerts/silence`.
    AlertsSilence,
    /// Anything else: unknown paths (404) and disallowed methods (405).
    Other,
}

/// Every endpoint, in the fixed order `/metrics` renders.
pub const ENDPOINTS: [Endpoint; 19] = [
    Endpoint::Analyze,
    Endpoint::Graph,
    Endpoint::Correctness,
    Endpoint::Invariants,
    Endpoint::Simulate,
    Endpoint::Sweep,
    Endpoint::Optimize,
    Endpoint::Whatif,
    Endpoint::V1,
    Endpoint::Healthz,
    Endpoint::Stats,
    Endpoint::Metrics,
    Endpoint::DebugRequests,
    Endpoint::MetricsHistory,
    Endpoint::Slo,
    Endpoint::DebugSlow,
    Endpoint::Alerts,
    Endpoint::AlertsSilence,
    Endpoint::Other,
];

impl Endpoint {
    /// The stable `endpoint` label value.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Analyze => "analyze",
            Endpoint::Graph => "graph",
            Endpoint::Correctness => "correctness",
            Endpoint::Invariants => "invariants",
            Endpoint::Simulate => "simulate",
            Endpoint::Sweep => "sweep",
            Endpoint::Optimize => "optimize",
            Endpoint::Whatif => "whatif",
            Endpoint::V1 => "v1",
            Endpoint::Healthz => "healthz",
            Endpoint::Stats => "stats",
            Endpoint::Metrics => "metrics",
            Endpoint::DebugRequests => "debug_requests",
            Endpoint::MetricsHistory => "metrics_history",
            Endpoint::Slo => "slo",
            Endpoint::DebugSlow => "debug_slow",
            Endpoint::Alerts => "alerts",
            Endpoint::AlertsSilence => "alerts_silence",
            Endpoint::Other => "other",
        }
    }

    /// Whether this endpoint serves an analysis computation (the POST
    /// surfaces the default SLO objective applies to), as opposed to a
    /// read-only observability surface.
    pub fn is_analysis(self) -> bool {
        matches!(
            self,
            Endpoint::Analyze
                | Endpoint::Graph
                | Endpoint::Correctness
                | Endpoint::Invariants
                | Endpoint::Simulate
                | Endpoint::Sweep
                | Endpoint::Optimize
                | Endpoint::Whatif
                | Endpoint::V1
        )
    }

    /// The endpoint with the given label value.
    pub fn by_name(name: &str) -> Option<Endpoint> {
        ENDPOINTS.iter().copied().find(|e| e.name() == name)
    }

    /// The endpoint serving a given analysis request kind.
    pub fn of_kind(kind: RequestKind) -> Endpoint {
        match kind {
            RequestKind::Analyze => Endpoint::Analyze,
            RequestKind::Graph => Endpoint::Graph,
            RequestKind::Correctness => Endpoint::Correctness,
            RequestKind::Invariants => Endpoint::Invariants,
            RequestKind::Simulate { .. } => Endpoint::Simulate,
            RequestKind::Sweep { .. } => Endpoint::Sweep,
            RequestKind::Optimize { .. } => Endpoint::Optimize,
            RequestKind::Whatif { .. } => Endpoint::Whatif,
        }
    }

    pub(crate) fn index(self) -> usize {
        // Discriminant order matches [`ENDPOINTS`] (pinned by a test
        // below), so the hot path's slot lookup is a plain cast
        // instead of a scan.
        self as usize
    }
}

/// The status codes the server emits, each its own label value; any
/// other code falls into the trailing "other" slot.
const STATUSES: [u16; 8] = [200, 400, 404, 405, 413, 422, 501, 503];

fn status_index(status: u16) -> usize {
    STATUSES
        .iter()
        .position(|&s| s == status)
        .unwrap_or(STATUSES.len())
}

fn status_label(index: usize) -> &'static str {
    match index {
        0 => "200",
        1 => "400",
        2 => "404",
        3 => "405",
        4 => "413",
        5 => "422",
        6 => "501",
        7 => "503",
        _ => "other",
    }
}

/// Completed requests the `/debug/requests` ring retains.
pub const TRACE_RING_CAP: usize = 256;

/// One completed request's trace: outcome plus the span tree its
/// worker collected (preorder; `depth` reproduces the nesting). The
/// root span is implicit — the header fields *are* its measurement —
/// so `spans` holds only depth ≥ 2 and renderers synthesize the root
/// line.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The serving endpoint's label value.
    pub endpoint: &'static str,
    /// The HTTP status returned.
    pub status: u16,
    /// Completion time as a raw [`tpn_obs::clock::now_ns`] reading;
    /// converted to Unix milliseconds at render time (the hot path
    /// stores the reading it already has and never touches the Unix
    /// base).
    pub end_ns: u64,
    /// Total request duration in nanoseconds.
    pub duration_ns: u64,
    /// Content digest of the net the request resolved, when one was —
    /// the handle that reproduces the request against `/v1` or the
    /// CLI. The two `NetDigest` words packed big-endian; rendered as
    /// 32 hex digits at exposition time (the hot path never formats).
    pub digest: Option<u128>,
    /// Spec hash of the request's sweep/optimize/whatif spec, when
    /// the request carried one. Rendered as 32 hex digits.
    pub spec: Option<u128>,
    /// The collected spans, preorder, excluding the implicit root.
    pub spans: Vec<Span>,
}

/// Completed slow requests the `/debug/slow` ring retains.
pub const SLOW_RING_CAP: usize = 64;

/// One watchdog capture: a request that exceeded its endpoint's SLO
/// latency objective, with the objective it breached.
#[derive(Debug, Clone)]
pub struct SlowTrace {
    /// The captured request trace.
    pub trace: RequestTrace,
    /// The latency objective the request exceeded, nanoseconds.
    pub threshold_ns: u64,
}

/// The trace-collector annotation slot holding the net digest.
pub(crate) const ANNOTATE_DIGEST: usize = 0;
/// The trace-collector annotation slot holding the spec hash.
pub(crate) const ANNOTATE_SPEC: usize = 1;

/// Record the net digest the current request resolved. Rides the
/// trace collector's annotation slots (no-op when no collection is
/// active; first writer wins — a `/whatif` re-timing resolves many
/// inner digests, but the request is about the base net it started
/// from): one thread-local access, no allocation or formatting.
pub(crate) fn annotate_digest(digest: [u64; 2]) {
    tpn_obs::trace::annotate(
        ANNOTATE_DIGEST,
        (u128::from(digest[0]) << 64) | u128::from(digest[1]),
    );
}

/// Record the spec hash the current request carried. Same slot
/// semantics as [`annotate_digest`].
pub(crate) fn annotate_spec(spec: u128) {
    tpn_obs::trace::annotate(ANNOTATE_SPEC, spec);
}

/// The recording half of service observability. One instance per
/// [`Service`](crate::Service), shared by all workers.
#[derive(Debug)]
pub struct ServiceMetrics {
    enabled: bool,
    /// `requests[endpoint][status-slot]`, relaxed.
    requests: [[AtomicU64; STATUSES.len() + 1]; ENDPOINTS.len()],
    /// Request-duration histogram per endpoint.
    durations: [Histogram; ENDPOINTS.len()],
    /// Most recent completed request traces, oldest first.
    traces: Mutex<VecDeque<RequestTrace>>,
    /// Most recent objective-breaching request traces, oldest first —
    /// the watchdog's evidence ring, separate from `traces` so a burst
    /// of fast requests cannot evict the slow outliers.
    slow: Mutex<VecDeque<SlowTrace>>,
}

impl ServiceMetrics {
    /// A fresh all-zero recorder. With `enabled` false every recording
    /// entry point is skipped at the call site — the no-op
    /// configuration the overhead bench compares against.
    pub fn new(enabled: bool) -> ServiceMetrics {
        ServiceMetrics {
            enabled,
            requests: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            durations: std::array::from_fn(|_| Histogram::new()),
            traces: Mutex::new(VecDeque::with_capacity(TRACE_RING_CAP)),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    /// Whether recording (and tracing, and request logging) is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Count one served request and record its duration.
    pub(crate) fn record(&self, endpoint: Endpoint, status: u16, duration_ns: u64) {
        let e = endpoint.index();
        // The 200 slot is implicit: every request lands in the
        // endpoint's duration histogram, so successes are derived at
        // read time ([`requests_in_slot`]) as histogram count minus
        // the explicit non-200 slots — one less atomic RMW on the
        // (overwhelmingly 200) hot path. The histogram is bumped
        // before the slot so a racing reader can only momentarily
        // over-count successes, never push the subtraction negative.
        self.durations[e].record_ns(duration_ns);
        let slot = status_index(status);
        if slot != 0 {
            self.requests[e][slot].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Requests counted for one `(endpoint, status-slot)` pair; the
    /// 200 slot (index 0) is derived, see [`record`](Self::record).
    fn requests_in_slot(&self, e: usize, slot: usize) -> u64 {
        if slot == 0 {
            let non_200: u64 = self.requests[e][1..]
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .sum();
            self.durations[e].snapshot().count().saturating_sub(non_200)
        } else {
            self.requests[e][slot].load(Ordering::Relaxed)
        }
    }

    /// Push one completed trace, evicting the oldest past the cap.
    /// `header` carries everything but the spans (its `spans` must be
    /// empty — `Vec::new()`, no allocation), which are **copied** from
    /// the borrowed slice into the evicted entry's buffer. Once the
    /// ring is full no allocation happens here: the span storage is a
    /// stable set of ring-resident buffers, and the collector keeps
    /// its own (see [`tpn_obs::trace::end_with`]).
    pub(crate) fn push_trace_copying(&self, mut header: RequestTrace, spans: &[Span]) {
        debug_assert!(header.spans.is_empty());
        let mut ring = self.traces.lock().expect("trace ring lock");
        if ring.len() == TRACE_RING_CAP {
            if let Some(evicted) = ring.pop_front() {
                header.spans = evicted.spans;
                header.spans.clear();
            }
        }
        header.spans.extend_from_slice(spans);
        ring.push_back(header);
    }

    /// The `n` most recent completed traces, most recent first.
    pub fn recent_traces(&self, n: usize) -> Vec<RequestTrace> {
        let ring = self.traces.lock().expect("trace ring lock");
        ring.iter().rev().take(n).cloned().collect()
    }

    /// Capture one objective-breaching request into the slow ring. The
    /// trace is a clone (the general ring owns the original), so no
    /// span buffers are recycled from here.
    pub(crate) fn push_slow(&self, capture: SlowTrace) {
        let mut ring = self.slow.lock().expect("slow ring lock");
        if ring.len() == SLOW_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(capture);
    }

    /// The `n` most recent slow-request captures, most recent first.
    pub fn recent_slow(&self, n: usize) -> Vec<SlowTrace> {
        let ring = self.slow.lock().expect("slow ring lock");
        ring.iter().rev().take(n).cloned().collect()
    }

    /// Server-error (5xx) responses counted for one endpoint — the
    /// error dimension of its SLO window.
    pub(crate) fn errors_5xx(&self, e: usize) -> u64 {
        STATUSES
            .iter()
            .enumerate()
            .filter(|(_, &s)| s >= 500)
            .map(|(slot, _)| self.requests[e][slot].load(Ordering::Relaxed))
            // The trailing "other" slot holds 500s (and any future
            // 5xx); nothing below 500 falls into it today.
            .chain(std::iter::once(
                self.requests[e][STATUSES.len()].load(Ordering::Relaxed),
            ))
            .sum()
    }

    /// Total requests counted for `(endpoint, status)` — test hook.
    pub fn requests_total(&self, endpoint: Endpoint, status: u16) -> u64 {
        self.requests_in_slot(endpoint.index(), status_index(status))
    }

    /// The request-duration snapshot of one endpoint — test hook.
    pub fn duration_snapshot(&self, endpoint: Endpoint) -> HistogramSnapshot {
        self.durations[endpoint.index()].snapshot()
    }
}

/// Connection-level counters shared by both listeners. The threaded
/// listener bumps these around each `handle_connection` call; the
/// epoll listener bumps them from the reactor thread. All relaxed —
/// the open gauge can be momentarily stale to a reader, never to the
/// listener itself.
#[derive(Debug)]
pub struct ConnStats {
    open: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    drained: AtomicU64,
    /// Accepted-to-closed connection lifetime.
    lifetime: Histogram,
}

impl Default for ConnStats {
    fn default() -> ConnStats {
        ConnStats {
            open: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            lifetime: Histogram::new(),
        }
    }
}

/// A plain-number copy of [`ConnStats`], for `/stats` and `tpn top`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnScalars {
    /// Connections currently open (accepted, not yet closed).
    pub open: u64,
    /// Connections accepted since start.
    pub accepted: u64,
    /// Connections refused at the hard connection cap (503-and-close).
    pub rejected: u64,
    /// Connections closed by a read/write deadline.
    pub timeouts: u64,
    /// Connections closed by graceful drain at shutdown.
    pub drained: u64,
}

impl ConnStats {
    /// Count one accepted connection (bumps the open gauge).
    pub fn opened(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one closed connection and record its lifetime. The
    /// histogram is bumped after the gauge so a racing scrape never
    /// sees a lifetime sample for a still-open connection.
    pub fn closed(&self, lifetime_ns: u64) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        self.lifetime.record_ns(lifetime_ns);
    }

    /// Count one connection refused at the connection cap.
    pub fn reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection closed by a deadline.
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection closed by graceful drain.
    pub fn drain(&self) {
        self.drained.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy the scalar counters out.
    pub fn scalars(&self) -> ConnScalars {
        ConnScalars {
            open: self.open.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
        }
    }

    /// Snapshot the connection-lifetime histogram.
    pub fn lifetime(&self) -> HistogramSnapshot {
        self.lifetime.snapshot()
    }
}

/// Every `/stats` number, copied out for rendering — the bridge
/// between the service's private counters and [`render`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StatsSnapshot {
    pub requests: u64,
    pub computations: u64,
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    pub evictions: u64,
    pub entries: u64,
    pub bytes: u64,
    pub sweeps: u64,
    pub sweep_hits: u64,
    pub sweep_compiles: u64,
    pub sweep_points: u64,
    pub optimizes: u64,
    pub optimize_hits: u64,
    pub optimize_solves: u64,
    pub optimize_certified: u64,
    pub whatifs: u64,
    pub whatif_perturbations: u64,
    pub whatif_hits: u64,
    pub whatif_retimes: u64,
    pub whatif_rejects: u64,
    pub v1_envelopes: u64,
    pub session_entries: u64,
    pub session_hits: u64,
    pub session_misses: u64,
    pub session_evictions: u64,
    pub threads: u64,
    pub queue_cap: u64,
    pub uptime_seconds: f64,
    pub start_time_seconds: f64,
    pub alerts_firing: u64,
    pub alerts_pending: u64,
    pub notifications_sent: u64,
    pub notifications_dropped: u64,
    pub notifications_failed: u64,
}

/// Assemble the `GET /metrics` document. Families render in one fixed
/// order, endpoints in [`ENDPOINTS`] order, stages in
/// [`STAGES`] order, statuses in [`STATUSES`] order — rendering the
/// same state twice yields identical bytes. Zero-valued request
/// counter series and empty per-endpoint histograms are omitted (the
/// families stay declared), matching Prometheus convention for
/// labelled series that have seen no traffic; the seven stage
/// histograms always render, so p99-per-stage is derivable from the
/// first scrape on.
pub(crate) fn render(
    metrics: &ServiceMetrics,
    stats: &StatsSnapshot,
    stages: &StageCounters,
    conn: &ConnStats,
) -> String {
    let mut r = Renderer::new();

    r.header(
        "tpn_build_info",
        "Build metadata of the serving binary; the value is always 1.",
        "gauge",
    );
    r.sample_u64(
        "tpn_build_info",
        &[("version", env!("CARGO_PKG_VERSION"))],
        1,
    );

    r.header(
        "tpn_process_uptime_seconds",
        "Seconds since the service was constructed.",
        "gauge",
    );
    r.sample_f64("tpn_process_uptime_seconds", &[], stats.uptime_seconds);

    r.header(
        "tpn_process_start_time_seconds",
        "Unix time the service was constructed, seconds — a change means a restart.",
        "gauge",
    );
    r.sample_f64(
        "tpn_process_start_time_seconds",
        &[],
        stats.start_time_seconds,
    );

    r.header(
        "tpn_requests_total",
        "Requests served, by endpoint and HTTP status.",
        "counter",
    );
    for endpoint in ENDPOINTS {
        for slot in 0..=STATUSES.len() {
            let n = metrics.requests_in_slot(endpoint.index(), slot);
            if n > 0 {
                r.sample_u64(
                    "tpn_requests_total",
                    &[
                        ("endpoint", endpoint.name()),
                        ("status", status_label(slot)),
                    ],
                    n,
                );
            }
        }
    }

    r.header(
        "tpn_request_duration_seconds",
        "Request latency by endpoint, wall clock from dispatch to response body.",
        "histogram",
    );
    for endpoint in ENDPOINTS {
        let snap = metrics.durations[endpoint.index()].snapshot();
        if snap.count() > 0 {
            r.histogram(
                "tpn_request_duration_seconds",
                &[("endpoint", endpoint.name())],
                &snap,
            );
        }
    }

    r.header(
        "tpn_stage_build_seconds",
        "Session pipeline stage build durations (one sample per artifact actually built).",
        "histogram",
    );
    for stage in STAGES {
        r.histogram(
            "tpn_stage_build_seconds",
            &[("stage", stage.name())],
            &stages.build_times(stage),
        );
    }

    let counters: [(&str, &str, u64); 18] = [
        (
            "tpn_service_requests_total",
            "Analysis requests accepted across all surfaces (the /stats \"requests\" counter).",
            stats.requests,
        ),
        (
            "tpn_cache_computations_total",
            "Body-cache misses that ran a computation.",
            stats.computations,
        ),
        ("tpn_cache_hits_total", "Body-cache hits.", stats.hits),
        ("tpn_cache_misses_total", "Body-cache misses.", stats.misses),
        (
            "tpn_cache_coalesced_total",
            "Requests that coalesced onto a concurrent identical computation.",
            stats.coalesced,
        ),
        (
            "tpn_cache_evictions_total",
            "Body-cache evictions.",
            stats.evictions,
        ),
        ("tpn_sweeps_total", "Sweep requests.", stats.sweeps),
        (
            "tpn_sweep_hits_total",
            "Sweep cache hits.",
            stats.sweep_hits,
        ),
        (
            "tpn_sweep_compiles_total",
            "Sweep grid evaluations actually run.",
            stats.sweep_compiles,
        ),
        (
            "tpn_sweep_points_total",
            "Grid points evaluated by sweeps.",
            stats.sweep_points,
        ),
        ("tpn_optimizes_total", "Optimize requests.", stats.optimizes),
        (
            "tpn_optimize_hits_total",
            "Optimize cache hits.",
            stats.optimize_hits,
        ),
        (
            "tpn_optimize_solves_total",
            "Optimizer solves actually run.",
            stats.optimize_solves,
        ),
        (
            "tpn_optimize_certified_total",
            "Optimizer solves that produced a certificate.",
            stats.optimize_certified,
        ),
        (
            "tpn_whatifs_total",
            "What-if batch requests.",
            stats.whatifs,
        ),
        (
            "tpn_whatif_perturbations_total",
            "Individual what-if perturbations served.",
            stats.whatif_perturbations,
        ),
        (
            "tpn_whatif_hits_total",
            "What-if perturbations answered from the cache.",
            stats.whatif_hits,
        ),
        (
            "tpn_whatif_retimes_total",
            "What-if perturbations that instantiated the re-timing template.",
            stats.whatif_retimes,
        ),
    ];
    for (name, help, value) in counters {
        r.header(name, help, "counter");
        r.sample_u64(name, &[], value);
    }
    let more_counters: [(&str, &str, u64); 5] = [
        (
            "tpn_whatif_rejects_total",
            "What-if perturbations rejected (invalid or out of region).",
            stats.whatif_rejects,
        ),
        (
            "tpn_v1_envelopes_total",
            "POST /v1 envelopes served.",
            stats.v1_envelopes,
        ),
        (
            "tpn_session_hits_total",
            "Artifact-tier lookups that found a live session.",
            stats.session_hits,
        ),
        (
            "tpn_session_misses_total",
            "Artifact-tier lookups that created a session.",
            stats.session_misses,
        ),
        (
            "tpn_session_evictions_total",
            "Sessions evicted from the artifact tier.",
            stats.session_evictions,
        ),
    ];
    for (name, help, value) in more_counters {
        r.header(name, help, "counter");
        r.sample_u64(name, &[], value);
    }

    r.header(
        "tpn_artifact_demands_total",
        "Session pipeline stage demands, by stage and outcome (hit, miss or build).",
        "counter",
    );
    for stage in STAGES {
        let snap = stages.snapshot(stage);
        for (event, value) in [
            ("hit", snap.hits),
            ("miss", snap.misses),
            ("build", snap.builds),
        ] {
            r.sample_u64(
                "tpn_artifact_demands_total",
                &[("stage", stage.name()), ("event", event)],
                value,
            );
        }
    }

    let gauges: [(&str, &str, u64); 5] = [
        (
            "tpn_cache_entries",
            "Live body-cache entries.",
            stats.entries,
        ),
        (
            "tpn_cache_bytes",
            "Bytes held by body-cache entries.",
            stats.bytes,
        ),
        (
            "tpn_sessions",
            "Live sessions in the artifact tier.",
            stats.session_entries,
        ),
        ("tpn_threads", "Configured worker threads.", stats.threads),
        (
            "tpn_queue_cap",
            "Configured connection queue capacity.",
            stats.queue_cap,
        ),
    ];
    for (name, help, value) in gauges {
        r.header(name, help, "gauge");
        r.sample_u64(name, &[], value);
    }

    r.header(
        "tpn_alerts_firing",
        "Alert rules currently in the firing state.",
        "gauge",
    );
    r.sample_u64("tpn_alerts_firing", &[], stats.alerts_firing);

    r.header(
        "tpn_alerts_pending",
        "Alert rules currently waiting out their for-duration.",
        "gauge",
    );
    r.sample_u64("tpn_alerts_pending", &[], stats.alerts_pending);

    r.header(
        "tpn_alert_notifications_total",
        "Webhook notification lines, by result (sent, dropped at the queue, or failed after retries).",
        "counter",
    );
    // All three label values always render (even at zero) so the
    // family's series set — and thus the document bytes — never
    // depends on notifier activity.
    for (result, value) in [
        ("sent", stats.notifications_sent),
        ("dropped", stats.notifications_dropped),
        ("failed", stats.notifications_failed),
    ] {
        r.sample_u64(
            "tpn_alert_notifications_total",
            &[("result", result)],
            value,
        );
    }

    // Connection families come last: the alert tests pin the ordered
    // run of needles ending at tpn_alert_notifications_total, so new
    // families must append after it.
    let conn_scalars = conn.scalars();
    r.header(
        "tpn_connections_open",
        "Connections currently open (accepted, not yet closed).",
        "gauge",
    );
    r.sample_u64("tpn_connections_open", &[], conn_scalars.open);

    let conn_counters: [(&str, &str, u64); 4] = [
        (
            "tpn_connections_accepted_total",
            "Connections accepted since start.",
            conn_scalars.accepted,
        ),
        (
            "tpn_connections_rejected_total",
            "Connections refused at the hard connection cap.",
            conn_scalars.rejected,
        ),
        (
            "tpn_connection_timeouts_total",
            "Connections closed by a read or write deadline.",
            conn_scalars.timeouts,
        ),
        (
            "tpn_connections_drained_total",
            "Connections closed by graceful drain at shutdown.",
            conn_scalars.drained,
        ),
    ];
    for (name, help, value) in conn_counters {
        r.header(name, help, "counter");
        r.sample_u64(name, &[], value);
    }

    r.header(
        "tpn_connection_lifetime_seconds",
        "Accepted-to-closed connection lifetime.",
        "histogram",
    );
    r.histogram("tpn_connection_lifetime_seconds", &[], &conn.lifetime());

    r.finish()
}

/// Render one request trace as a single NDJSON line (no trailing
/// newline — the route joins lines). `threshold_ns` is the breached
/// latency objective on `/debug/slow` lines, absent on the general
/// ring's.
fn trace_line(trace: &RequestTrace, threshold_ns: Option<u64>) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("ts_ms");
    w.uint(tpn_obs::clock::unix_ms_at(trace.end_ns));
    w.key("endpoint");
    w.string(trace.endpoint);
    w.key("status");
    w.uint(u64::from(trace.status));
    w.key("duration_ns");
    w.uint(trace.duration_ns);
    if let Some(t) = threshold_ns {
        w.key("threshold_ns");
        w.uint(t);
    }
    if let Some(digest) = trace.digest {
        w.key("digest");
        w.string(&format!("{digest:032x}"));
    }
    if let Some(spec) = trace.spec {
        w.key("spec");
        w.string(&format!("{spec:032x}"));
    }
    w.key("spans");
    w.begin_array();
    // The implicit root, synthesized from the header measurement.
    w.begin_object();
    w.key("name");
    w.string(trace.endpoint);
    w.key("depth");
    w.uint(1);
    w.key("start_ns");
    w.uint(0);
    w.key("duration_ns");
    w.uint(trace.duration_ns);
    w.end_object();
    for span in &trace.spans {
        w.begin_object();
        w.key("name");
        w.string(span.name);
        w.key("depth");
        w.uint(u64::from(span.depth));
        w.key("start_ns");
        w.uint(span.start_ns);
        w.key("duration_ns");
        w.uint(span.duration_ns);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// The `GET /debug/requests?n=K` body: the K most recent completed
/// request traces, most recent first, one JSON document per line.
pub(crate) fn debug_requests_ndjson(traces: &[RequestTrace]) -> String {
    let mut out = String::new();
    for trace in traces {
        out.push_str(&trace_line(trace, None));
        out.push('\n');
    }
    out
}

/// The `GET /debug/slow?n=K` body: the K most recent watchdog
/// captures, most recent first, one JSON document per line — each the
/// `/debug/requests` shape plus the `threshold_ns` it breached.
pub(crate) fn debug_slow_ndjson(captures: &[SlowTrace]) -> String {
    let mut out = String::new();
    for capture in captures {
        out.push_str(&trace_line(&capture.trace, Some(capture.threshold_ns)));
        out.push('\n');
    }
    out
}

/// Render a span list as a JSON array into an existing writer — the
/// `/v1` envelope's `"trace"` member.
pub(crate) fn write_spans(w: &mut JsonWriter, spans: &[Span]) {
    w.begin_array();
    for span in spans {
        w.begin_object();
        w.key("name");
        w.string(span.name);
        w.key("depth");
        w.uint(u64::from(span.depth));
        w.key("start_ns");
        w.uint(span.start_ns);
        w.key("duration_ns");
        w.uint(span.duration_ns);
        w.end_object();
    }
    w.end_array();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_indices_are_consistent() {
        for (i, e) in ENDPOINTS.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
        let names: std::collections::HashSet<&str> = ENDPOINTS.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), ENDPOINTS.len(), "duplicate endpoint label");
    }

    #[test]
    fn status_slots_cover_every_emitted_code() {
        for (i, &s) in STATUSES.iter().enumerate() {
            assert_eq!(status_index(s), i);
            assert_eq!(status_label(i), s.to_string());
        }
        assert_eq!(status_index(500), STATUSES.len());
        assert_eq!(status_label(STATUSES.len()), "other");
    }

    #[test]
    fn record_and_render_roundtrip_validates() {
        let m = ServiceMetrics::new(true);
        m.record(Endpoint::Analyze, 200, 120_000);
        m.record(Endpoint::Analyze, 200, 80_000);
        m.record(Endpoint::Analyze, 422, 40_000);
        m.record(Endpoint::Sweep, 200, 3_000_000);
        let stages = StageCounters::new();
        let stats = StatsSnapshot {
            requests: 4,
            uptime_seconds: 1.25,
            ..StatsSnapshot::default()
        };
        let conn = ConnStats::default();
        conn.opened();
        conn.closed(2_000_000);
        let text = render(&m, &stats, &stages, &conn);
        tpn_obs::validate::validate(&text).unwrap();
        assert!(
            text.contains("tpn_requests_total{endpoint=\"analyze\",status=\"200\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("tpn_requests_total{endpoint=\"analyze\",status=\"422\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("tpn_request_duration_seconds_count{endpoint=\"analyze\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("tpn_stage_build_seconds_count{stage=\"trg\"} 0\n"),
            "{text}"
        );
        assert!(text.contains("tpn_build_info{version=\""), "{text}");
        assert!(text.contains("tpn_connections_open 0\n"), "{text}");
        assert!(
            text.contains("tpn_connections_accepted_total 1\n"),
            "{text}"
        );
        assert!(
            text.contains("tpn_connection_lifetime_seconds_count 1\n"),
            "{text}"
        );
        // Deterministic: identical state renders identical bytes.
        assert_eq!(text, render(&m, &stats, &stages, &conn));
    }

    #[test]
    fn trace_ring_keeps_the_most_recent() {
        let m = ServiceMetrics::new(true);
        for i in 0..(TRACE_RING_CAP + 10) {
            m.push_trace_copying(
                RequestTrace {
                    endpoint: "analyze",
                    status: 200,
                    end_ns: i as u64,
                    duration_ns: 1,
                    digest: None,
                    spec: None,
                    spans: Vec::new(),
                },
                &[],
            );
        }
        let recent = m.recent_traces(3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].end_ns, (TRACE_RING_CAP + 9) as u64);
        assert!(m.recent_traces(10_000).len() == TRACE_RING_CAP);
        let ndjson = debug_requests_ndjson(&recent);
        assert_eq!(ndjson.lines().count(), 3);
        assert!(ndjson.starts_with("{\"ts_ms\":"), "{ndjson}");
    }

    #[test]
    fn slow_ring_keeps_the_most_recent_and_renders_the_threshold() {
        let m = ServiceMetrics::new(true);
        for i in 0..(SLOW_RING_CAP + 5) {
            m.push_slow(SlowTrace {
                trace: RequestTrace {
                    endpoint: "analyze",
                    status: 200,
                    end_ns: i as u64,
                    duration_ns: 9_000_000,
                    digest: Some((0xabc1 << 64) | 0x23),
                    spec: None,
                    spans: Vec::new(),
                },
                threshold_ns: 5_000_000,
            });
        }
        assert_eq!(m.recent_slow(10_000).len(), SLOW_RING_CAP);
        let recent = m.recent_slow(2);
        assert_eq!(recent[0].trace.end_ns, (SLOW_RING_CAP + 4) as u64);
        let ndjson = debug_slow_ndjson(&recent);
        assert!(ndjson.contains("\"threshold_ns\":5000000"), "{ndjson}");
        assert!(
            ndjson.contains("\"digest\":\"000000000000abc10000000000000023\""),
            "{ndjson}"
        );
    }

    #[test]
    fn errors_5xx_counts_only_server_errors() {
        let m = ServiceMetrics::new(true);
        m.record(Endpoint::Analyze, 200, 1);
        m.record(Endpoint::Analyze, 422, 1);
        m.record(Endpoint::Analyze, 501, 1);
        m.record(Endpoint::Analyze, 503, 1);
        m.record(Endpoint::Analyze, 500, 1); // the "other" slot
        assert_eq!(m.errors_5xx(Endpoint::Analyze.index()), 3);
        assert_eq!(m.errors_5xx(Endpoint::Sweep.index()), 0);
    }

    #[test]
    fn annotations_pack_digest_words_into_the_trace_slots() {
        // Inactive: annotations are dropped.
        annotate_digest([9, 9]);
        assert_eq!(tpn_obs::trace::end_annotated(), None);
        assert!(tpn_obs::trace::begin_rooted(0));
        annotate_digest([1, 2]);
        annotate_digest([3, 4]); // first writer wins
        annotate_spec(0xbeef);
        let (_, annotations) = tpn_obs::trace::end_annotated().unwrap();
        assert_eq!(annotations[ANNOTATE_DIGEST], Some((1 << 64) | 2));
        assert_eq!(annotations[ANNOTATE_SPEC], Some(0xbeef));
    }
}
