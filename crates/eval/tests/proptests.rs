//! Property tests for the expression compiler: on random rational
//! functions and random evaluation points,
//!
//! * the compiled **exact** backend agrees with `RatFn::eval` —
//!   including on undefinedness (a vanishing denominator);
//! * the compiled **f64** backend agrees with exact evaluation within
//!   a small relative epsilon;
//! * compiled **derivatives** agree with `RatFn::derivative`.
//!
//! Term/value bounds are chosen so that exact intermediates stay far
//! inside `i128` (overflow would surface as a spurious `None`).

use proptest::prelude::*;
use tpn_eval::Compiled;
use tpn_rational::Rational;
use tpn_symbolic::{Assignment, Monomial, Poly, RatFn, Symbol};

fn syms() -> [Symbol; 3] {
    [
        Symbol::intern("evp_x"),
        Symbol::intern("evp_y"),
        Symbol::intern("evp_z"),
    ]
}

type Term = (i128, (u32, u32, u32));

fn poly_from(terms: &[Term]) -> Poly {
    let s = syms();
    let mut p = Poly::zero();
    for (c, (e0, e1, e2)) in terms {
        let m = Monomial::power(s[0], *e0)
            .mul(&Monomial::power(s[1], *e1))
            .mul(&Monomial::power(s[2], *e2));
        p.add_term(Rational::from_int(*c), m);
    }
    p
}

fn assignment_from(vals: &[(i128, i128)]) -> Assignment {
    syms()
        .into_iter()
        .zip(vals)
        .map(|(s, (n, d))| (s, Rational::new(*n, *d)))
        .collect()
}

fn point_for(c: &Compiled, a: &Assignment) -> Vec<Rational> {
    c.vars()
        .iter()
        .map(|s| a.get(*s).copied().unwrap_or(Rational::ZERO))
        .collect()
}

/// A strategy for up-to-4-term polynomials of degree ≤ 2 per symbol.
/// Kept small: `RatFn::new` canonicalises through a multivariate GCD
/// whose pseudo-remainder coefficients grow exponentially with degree,
/// and the *inputs* must stay in `i128` for the oracle to be exact.
fn terms() -> impl Strategy<Value = Vec<Term>> {
    proptest::collection::vec((-5i128..6, (0u32..3, 0u32..3, 0u32..3)), 0..4)
}

/// A strategy for one rational value per symbol.
fn values() -> impl Strategy<Value = Vec<(i128, i128)>> {
    proptest::collection::vec((-20i128..21, 1i128..8), 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compiled_exact_agrees_with_ratfn_eval(
        num in terms(),
        den in terms(),
        vals in values(),
    ) {
        let p = poly_from(&num);
        let q = poly_from(&den);
        prop_assume!(!q.is_zero());
        let f = RatFn::new(p, q);
        let c = Compiled::compile(std::slice::from_ref(&f));
        let a = assignment_from(&vals);
        let point = point_for(&c, &a);
        let out = c.eval_exact_once(&point);
        // Agreement includes undefinedness: None exactly where the
        // denominator vanishes at the point.
        prop_assert_eq!(out[0], f.eval(&a));
    }

    #[test]
    fn compiled_f64_agrees_with_exact_within_epsilon(
        num in terms(),
        den in terms(),
        vals in values(),
    ) {
        let p = poly_from(&num);
        let q = poly_from(&den);
        prop_assume!(!q.is_zero());
        let f = RatFn::new(p, q);
        let a = assignment_from(&vals);
        let exact = match f.eval(&a) {
            Some(v) => v,
            None => return Ok(()), // pole: the f64 side has no contract
        };
        let c = Compiled::compile(&[f]);
        let point: Vec<f64> = c
            .vars()
            .iter()
            .map(|s| a.get(*s).copied().unwrap_or(Rational::ZERO).to_f64())
            .collect();
        let out = c.eval_f64_once(&point);
        let got = out[0].expect("finite at a non-pole of small magnitude");
        let want = exact.to_f64();
        // Relative epsilon with an absolute floor: cancellation can make
        // the exact value tiny while intermediates stay O(coeff·val^deg).
        prop_assert!(
            (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
            "{} vs {}", got, want
        );
    }

    #[test]
    fn compiled_derivatives_agree_with_ratfn_derivative(
        num in terms(),
        // Affine denominator in the first symbol: the quotient rule
        // squares the denominator and re-canonicalises through the
        // multivariate GCD, whose pseudo-remainder coefficients leave
        // i128 for higher-degree random denominators. (Derived
        // performance expressions have exactly this affine-denominator
        // shape.)
        den in proptest::collection::vec((-3i128..4, (0u32..2, 0u32..1, 0u32..1)), 0..3),
        vals in values(),
    ) {
        let p = poly_from(&num);
        let q = poly_from(&den);
        prop_assume!(!q.is_zero());
        let f = RatFn::new(p, q);
        let wrt = syms()[0];
        let c = Compiled::compile_with_derivatives(std::slice::from_ref(&f), &[wrt]);
        let a = assignment_from(&vals);
        let point = point_for(&c, &a);
        let out = c.eval_exact_once(&point);
        prop_assert_eq!(out[0], f.eval(&a));
        prop_assert_eq!(out[1], f.derivative(wrt).eval(&a));
    }

    #[test]
    fn compiling_more_outputs_never_loses_agreement(
        num in terms(),
        vals in values(),
    ) {
        // Sharing across outputs (CSE) must not change any output: the
        // polynomial, its square and its product with a sibling all
        // evaluate exactly as their standalone compilations.
        let p = poly_from(&num);
        let f = RatFn::from_poly(p.clone());
        let f2 = &f * &f;
        let batch = Compiled::compile(&[f.clone(), f2.clone()]);
        let solo2 = Compiled::compile(std::slice::from_ref(&f2));
        let a = assignment_from(&vals);
        let got = batch.eval_exact_once(&point_for(&batch, &a));
        prop_assert_eq!(got[0], f.eval(&a));
        prop_assert_eq!(&got[1], &f2.eval(&a));
        let solo = solo2.eval_exact_once(&point_for(&solo2, &a));
        prop_assert_eq!(&solo[0], &got[1]);
    }
}
