//! `tpn-eval` — compiled evaluation of symbolic performance
//! expressions and parallel parameter sweeps.
//!
//! The paper's payoff (§3–§4) is a *symbolic* performance expression:
//! throughput and utilisation as rational functions of the timing and
//! frequency symbols. Answering the design questions those expressions
//! exist for — "how does throughput move as the timeout grows?", "which
//! parameter dominates?" — means evaluating them at *thousands* of
//! points, and exact [`RatFn::eval`](tpn_symbolic::RatFn::eval) is
//! built for one-off instantiation, not for that. This crate closes
//! the gap in two layers:
//!
//! | layer | contents |
//! |---|---|
//! | compilation | [`Compiled`]: flat arena bytecode (Horner factoring, CSE, constant folding) with `f64` and exact [`Rational`](tpn_rational::Rational) backends, plus compiled partial derivatives |
//! | sweeping | [`Grid`]/[`Axis`] parameter grids and the chunked multi-threaded executors [`sweep_f64`]/[`sweep_exact`] |
//!
//! ```
//! use tpn_eval::{sweep_f64, Axis, Compiled, Grid, SweepOptions};
//! use tpn_rational::Rational;
//! use tpn_symbolic::{Assignment, Poly, RatFn, Symbol};
//!
//! // T = x / (x + c), swept over x with c fixed
//! let x = Symbol::intern("lib_doc_x");
//! let c = Symbol::intern("lib_doc_c");
//! let t = RatFn::new(Poly::symbol(x), &Poly::symbol(x) + &Poly::symbol(c));
//! let compiled = Compiled::compile(&[t]);
//! let grid = Grid::new(vec![Axis::linear(
//!     x,
//!     Rational::from_int(1),
//!     Rational::from_int(100),
//!     1000,
//! )])
//! .unwrap();
//! let fixed = Assignment::new().with(c, Rational::from_int(5));
//! let rows = sweep_f64(&compiled, &grid, &fixed, &SweepOptions::default()).unwrap();
//! assert_eq!(rows.len(), 1000);
//! assert_eq!(rows[0][0], Some(1.0 / 6.0));
//! ```

mod compile;
mod error;
mod sweep;

pub use compile::Compiled;
pub use error::EvalError;
pub use sweep::{argbest_f64, sweep_exact, sweep_f64, Axis, Grid, SweepOptions};
