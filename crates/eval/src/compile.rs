//! Compilation of rational functions into flat arena bytecode.
//!
//! [`RatFn::eval`] walks a `BTreeMap` of monomials and performs an
//! exact `i128` gcd-normalising division per arithmetic step — perfect
//! for one-off instantiation, far too slow for the thousands of
//! evaluations a parameter sweep needs. [`Compiled::compile`] lowers a
//! *set* of rational functions into one flat program of three-address
//! ops with
//!
//! * **Horner-style monomial factoring** — every polynomial is emitted
//!   as a nested Horner scheme in its most-shared variable, so the op
//!   count is linear in the number of terms instead of quadratic in the
//!   degree;
//! * **common-subexpression elimination** — ops are hash-consed, so
//!   repeated subexpressions (shared denominators, powers, the numerator
//!   of an expression and of its derivative) are computed once per
//!   point across *all* outputs of the set;
//! * **constant folding** — sub-expressions without symbols collapse to
//!   constants at compile time.
//!
//! The program evaluates in two backends: a fast [`f64`] backend for
//! sweeps and an exact [`Rational`] backend (overflow-checked, so a
//! hostile point cannot panic a server worker) for verification.
//! Evaluation order is deterministic and depends only on symbol *names*
//! (never on interning order), so two processes compiling the same
//! expressions produce bit-identical `f64` results.

use std::collections::{BTreeMap, HashMap};

use tpn_rational::Rational;
use tpn_symbolic::{Poly, RatFn, Symbol};

/// One three-address operation. Operands are indices of earlier ops
/// (the program is in SSA form: op `i` defines register `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    /// Load a compile-time constant.
    Const(u32),
    /// Load an input variable.
    Var(u32),
    /// `regs[a] + regs[b]`.
    Add(u32, u32),
    /// `regs[a] * regs[b]`.
    Mul(u32, u32),
    /// `regs[a] / regs[b]`.
    Div(u32, u32),
}

/// A set of rational functions compiled into one shared flat program.
///
/// # Examples
///
/// ```
/// use tpn_eval::Compiled;
/// use tpn_rational::Rational;
/// use tpn_symbolic::{Poly, RatFn, Symbol};
///
/// let x = Symbol::intern("cmp_doc_x");
/// // f = x / (x + 1)
/// let f = RatFn::new(Poly::symbol(x), &Poly::symbol(x) + &Poly::one());
/// let c = Compiled::compile(&[f.clone()]);
/// assert_eq!(c.vars(), &[x]);
/// let out = c.eval_f64_once(&[3.0]);
/// assert_eq!(out, vec![Some(0.75)]);
/// let exact = c.eval_exact_once(&[Rational::from_int(3)]);
/// assert_eq!(exact, vec![Some(Rational::new(3, 4))]);
/// ```
#[derive(Debug, Clone)]
pub struct Compiled {
    ops: Vec<Op>,
    consts: Vec<Rational>,
    consts_f64: Vec<f64>,
    vars: Vec<Symbol>,
    outputs: Vec<u32>,
}

/// Hash-consing program builder.
struct Builder {
    ops: Vec<Op>,
    consts: Vec<Rational>,
    const_ids: HashMap<Rational, u32>,
    cse: HashMap<Op, u32>,
    vars: Vec<Symbol>,
    var_ids: HashMap<Symbol, u32>,
    /// Symbol names, resolved once (the interner takes a lock per call).
    names: HashMap<Symbol, String>,
}

impl Builder {
    fn new(vars: Vec<Symbol>) -> Builder {
        let var_ids = vars
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, i as u32))
            .collect();
        let names = vars.iter().map(|s| (*s, s.name())).collect();
        Builder {
            ops: Vec::new(),
            consts: Vec::new(),
            const_ids: HashMap::new(),
            cse: HashMap::new(),
            vars,
            var_ids,
            names,
        }
    }

    /// Append `op` (or return the register of an identical earlier op).
    fn push(&mut self, op: Op) -> u32 {
        if let Some(&reg) = self.cse.get(&op) {
            return reg;
        }
        let reg = u32::try_from(self.ops.len()).expect("program too large");
        self.ops.push(op);
        self.cse.insert(op, reg);
        reg
    }

    fn constant(&mut self, c: Rational) -> u32 {
        let id = match self.const_ids.get(&c) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.consts.len()).expect("too many constants");
                self.consts.push(c);
                self.const_ids.insert(c, id);
                id
            }
        };
        self.push(Op::Const(id))
    }

    fn var(&mut self, s: Symbol) -> u32 {
        let id = *self.var_ids.get(&s).expect("symbol registered as a var");
        self.push(Op::Var(id))
    }

    /// The constant value a register holds, if it is a `Const` op.
    fn as_const(&self, reg: u32) -> Option<Rational> {
        match self.ops[reg as usize] {
            Op::Const(id) => Some(self.consts[id as usize]),
            _ => None,
        }
    }

    fn add(&mut self, a: u32, b: u32) -> u32 {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(x + y),
            (Some(x), None) if x.is_zero() => b,
            (None, Some(y)) if y.is_zero() => a,
            // Addition commutes (exactly, in IEEE 754 too): canonicalise
            // the operand order so `a+b` and `b+a` hash-cons together.
            _ => self.push(Op::Add(a.min(b), a.max(b))),
        }
    }

    fn mul(&mut self, a: u32, b: u32) -> u32 {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(x * y),
            (Some(x), None) if x.is_one() => b,
            (None, Some(y)) if y.is_one() => a,
            _ => self.push(Op::Mul(a.min(b), a.max(b))),
        }
    }

    fn div(&mut self, a: u32, b: u32) -> u32 {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) if !y.is_zero() => self.constant(x / y),
            (None, Some(y)) if y.is_one() => a,
            _ => self.push(Op::Div(a, b)),
        }
    }

    /// `base^e` by binary exponentiation; the squarings hash-cons, so
    /// every power of the same base shares work.
    fn pow(&mut self, base: u32, e: u32) -> u32 {
        debug_assert!(e > 0, "pow with zero exponent");
        let mut result: Option<u32> = None;
        let mut sq = base;
        let mut e = e;
        loop {
            if e & 1 == 1 {
                result = Some(match result {
                    None => sq,
                    Some(r) => self.mul(r, sq),
                });
            }
            e >>= 1;
            if e == 0 {
                break;
            }
            sq = self.mul(sq, sq);
        }
        result.expect("e > 0")
    }

    /// The Horner main variable of `p`: the symbol shared by the most
    /// terms (factoring it out saves the most multiplications), ties
    /// broken by higher degree, then by *name* — never by interning
    /// order, so the emitted program is identical across processes.
    fn main_var(&mut self, p: &Poly) -> Symbol {
        let mut occurrences: HashMap<Symbol, (usize, u32)> = HashMap::new();
        for (m, _) in p.terms() {
            for (s, e) in m.factors() {
                let entry = occurrences.entry(s).or_insert((0, 0));
                entry.0 += 1;
                entry.1 = entry.1.max(e);
            }
        }
        let mut best: Option<(usize, u32, String, Symbol)> = None;
        for (s, (count, deg)) in occurrences {
            let name = self.names.entry(s).or_insert_with(|| s.name()).clone();
            let better = match &best {
                None => true,
                Some((bc, bd, bn, _)) => {
                    (count, deg) > (*bc, *bd) || ((count, deg) == (*bc, *bd) && name < *bn)
                }
            };
            if better {
                best = Some((count, deg, name, s));
            }
        }
        best.expect("non-constant polynomial has symbols").3
    }

    /// Emit `p` as a nested Horner scheme.
    fn poly(&mut self, p: &Poly) -> u32 {
        if let Some(c) = p.as_constant() {
            return self.constant(c);
        }
        let x = self.main_var(p);
        // View p as univariate in x with polynomial coefficients.
        let mut coeffs: BTreeMap<u32, Poly> = BTreeMap::new();
        for (m, c) in p.terms() {
            let (rest, e) = m.split(x);
            coeffs
                .entry(e)
                .or_insert_with(Poly::zero)
                .add_term(*c, rest);
        }
        let xr = self.var(x);
        // Horner: fold exponents downward, multiplying by x^gap.
        let mut iter = coeffs.iter().rev();
        let (&e_top, c_top) = iter.next().expect("non-constant poly has terms");
        let c_top = c_top.clone();
        let mut acc = self.poly(&c_top);
        let mut prev = e_top;
        let rest: Vec<(u32, Poly)> = iter.map(|(e, c)| (*e, c.clone())).collect();
        for (e, c) in rest {
            let gap = self.pow(xr, prev - e);
            let shifted = self.mul(acc, gap);
            let cr = self.poly(&c);
            acc = self.add(shifted, cr);
            prev = e;
        }
        if prev > 0 {
            let tail = self.pow(xr, prev);
            acc = self.mul(acc, tail);
        }
        acc
    }

    fn ratfn(&mut self, r: &RatFn) -> u32 {
        let n = self.poly(r.numer());
        if r.denom().is_one() {
            return n;
        }
        let d = self.poly(r.denom());
        self.div(n, d)
    }
}

impl Compiled {
    /// Compile a set of rational functions into one shared program.
    /// Output `i` of the program is `exprs[i]`.
    pub fn compile(exprs: &[RatFn]) -> Compiled {
        Compiled::build(exprs.to_vec())
    }

    /// Compile `exprs` *and* their partial derivatives with respect to
    /// each symbol of `wrt`. Outputs are laid out as
    /// `exprs[0..n]`, then `∂exprs[i]/∂wrt[j]` at `n + i·wrt.len() + j`.
    /// The derivative of an expression shares most of its subexpressions
    /// with the expression itself, so the marginal cost per point is far
    /// below a second full evaluation.
    pub fn compile_with_derivatives(exprs: &[RatFn], wrt: &[Symbol]) -> Compiled {
        let mut all: Vec<RatFn> = exprs.to_vec();
        for e in exprs {
            for &s in wrt {
                all.push(e.derivative(s));
            }
        }
        Compiled::build(all)
    }

    fn build(exprs: Vec<RatFn>) -> Compiled {
        // Input variables: the union of all symbols, ordered by *name*
        // so the layout is reproducible across processes.
        let mut vars: Vec<Symbol> = Vec::new();
        for e in &exprs {
            for s in e.symbols() {
                if !vars.contains(&s) {
                    vars.push(s);
                }
            }
        }
        let mut named: Vec<(String, Symbol)> = vars.into_iter().map(|s| (s.name(), s)).collect();
        named.sort();
        let vars: Vec<Symbol> = named.into_iter().map(|(_, s)| s).collect();
        let mut b = Builder::new(vars);
        let outputs: Vec<u32> = exprs.iter().map(|e| b.ratfn(e)).collect();
        let consts_f64 = b.consts.iter().map(Rational::to_f64).collect();
        Compiled {
            ops: b.ops,
            consts: b.consts,
            consts_f64,
            vars: b.vars,
            outputs,
        }
    }

    /// The input variables, in program order. `eval_*` points bind
    /// values positionally to this slice.
    pub fn vars(&self) -> &[Symbol] {
        &self.vars
    }

    /// Position of `s` in [`Compiled::vars`].
    pub fn var_index(&self, s: Symbol) -> Option<usize> {
        self.vars.iter().position(|&v| v == s)
    }

    /// Number of outputs (compiled expressions).
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of ops in the flat program (after CSE and folding).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Evaluate every output at `point` (one `f64` per var, in
    /// [`Compiled::vars`] order) using the fast float backend. `scratch`
    /// is reused across calls to keep the hot path allocation-free.
    /// An output is `None` where the value is undefined (a denominator
    /// vanished, or an intermediate overflowed to non-finite).
    pub fn eval_f64(&self, point: &[f64], scratch: &mut Vec<f64>, out: &mut [Option<f64>]) {
        assert_eq!(point.len(), self.vars.len(), "point arity");
        assert_eq!(out.len(), self.outputs.len(), "output arity");
        scratch.clear();
        scratch.reserve(self.ops.len());
        for op in &self.ops {
            let v = match *op {
                Op::Const(i) => self.consts_f64[i as usize],
                Op::Var(i) => point[i as usize],
                Op::Add(a, b) => scratch[a as usize] + scratch[b as usize],
                Op::Mul(a, b) => scratch[a as usize] * scratch[b as usize],
                Op::Div(a, b) => scratch[a as usize] / scratch[b as usize],
            };
            scratch.push(v);
        }
        for (slot, &reg) in out.iter_mut().zip(&self.outputs) {
            let v = scratch[reg as usize];
            *slot = v.is_finite().then_some(v);
        }
    }

    /// One-shot convenience wrapper around [`Compiled::eval_f64`].
    pub fn eval_f64_once(&self, point: &[f64]) -> Vec<Option<f64>> {
        let mut scratch = Vec::new();
        let mut out = vec![None; self.outputs.len()];
        self.eval_f64(point, &mut scratch, &mut out);
        out
    }

    /// Evaluate every output at `point` in the exact backend. All
    /// arithmetic is overflow-checked: an output is `None` where a
    /// denominator vanishes or an exact intermediate leaves `i128`
    /// range, never a panic (the sweep endpoint runs this on worker
    /// threads).
    pub fn eval_exact(
        &self,
        point: &[Rational],
        scratch: &mut Vec<Option<Rational>>,
        out: &mut [Option<Rational>],
    ) {
        assert_eq!(point.len(), self.vars.len(), "point arity");
        assert_eq!(out.len(), self.outputs.len(), "output arity");
        scratch.clear();
        scratch.reserve(self.ops.len());
        for op in &self.ops {
            let v: Option<Rational> = match *op {
                Op::Const(i) => Some(self.consts[i as usize]),
                Op::Var(i) => Some(point[i as usize]),
                Op::Add(a, b) => match (&scratch[a as usize], &scratch[b as usize]) {
                    (Some(x), Some(y)) => x.checked_add(y).ok(),
                    _ => None,
                },
                Op::Mul(a, b) => match (&scratch[a as usize], &scratch[b as usize]) {
                    (Some(x), Some(y)) => x.checked_mul(y).ok(),
                    _ => None,
                },
                Op::Div(a, b) => match (&scratch[a as usize], &scratch[b as usize]) {
                    (Some(x), Some(y)) => x.checked_div(y).ok(),
                    _ => None,
                },
            };
            scratch.push(v);
        }
        for (slot, &reg) in out.iter_mut().zip(&self.outputs) {
            *slot = scratch[reg as usize];
        }
    }

    /// One-shot convenience wrapper around [`Compiled::eval_exact`].
    pub fn eval_exact_once(&self, point: &[Rational]) -> Vec<Option<Rational>> {
        let mut scratch = Vec::new();
        let mut out = vec![None; self.outputs.len()];
        self.eval_exact(point, &mut scratch, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_symbolic::Assignment;

    fn sp(n: &str) -> Poly {
        Poly::symbol(Symbol::intern(n))
    }

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn constant_expression_folds_to_one_op() {
        let c = Compiled::compile(&[RatFn::constant(r(3, 4))]);
        assert_eq!(c.num_ops(), 1);
        assert_eq!(c.vars(), &[]);
        assert_eq!(c.eval_f64_once(&[]), vec![Some(0.75)]);
        assert_eq!(c.eval_exact_once(&[]), vec![Some(r(3, 4))]);
    }

    #[test]
    fn horner_factoring_matches_direct_eval() {
        // p = x³y + 2x²y + 5x + 7, a shape with a useful Horner nesting
        let x = Symbol::intern("cmp_hx");
        let y = Symbol::intern("cmp_hy");
        let p = {
            let mut p = &Poly::symbol(x).pow(3) * &Poly::symbol(y);
            p += (&Poly::symbol(x).pow(2) * &Poly::symbol(y)).scale(&r(2, 1));
            p += Poly::symbol(x).scale(&r(5, 1));
            p += Poly::constant(r(7, 1));
            p
        };
        let f = RatFn::from_poly(p.clone());
        let c = Compiled::compile(&[f]);
        let a = Assignment::new().with(x, r(3, 2)).with(y, r(-2, 7));
        let point: Vec<Rational> = c.vars().iter().map(|s| *a.get(*s).unwrap()).collect();
        assert_eq!(c.eval_exact_once(&point)[0], p.eval(&a));
    }

    #[test]
    fn cse_shares_common_denominator_across_outputs() {
        // p = f4/(f4+f5), q = f5/(f4+f5): the denominator is built once.
        let f4 = sp("cmp_f4");
        let f5 = sp("cmp_f5");
        let p = RatFn::new(f4.clone(), &f4 + &f5);
        let q = RatFn::new(f5.clone(), &f4 + &f5);
        let both = Compiled::compile(&[p.clone(), q.clone()]);
        let alone = Compiled::compile(&[p]);
        // sharing: two quotients cost 2 extra ops (second numerator is a
        // var already loaded), not a second denominator chain
        assert!(
            both.num_ops() < 2 * alone.num_ops(),
            "{} vs {}",
            both.num_ops(),
            alone.num_ops()
        );
        let out = both.eval_f64_once(&[19.0, 1.0]);
        assert_eq!(out, vec![Some(0.95), Some(0.05)]);
    }

    #[test]
    fn division_by_zero_is_undefined_not_panic() {
        let x = Symbol::intern("cmp_dz");
        let f = RatFn::new(Poly::one(), Poly::symbol(x));
        let c = Compiled::compile(&[f]);
        assert_eq!(c.eval_f64_once(&[0.0]), vec![None]);
        assert_eq!(c.eval_exact_once(&[Rational::ZERO]), vec![None]);
        assert_eq!(c.eval_f64_once(&[2.0]), vec![Some(0.5)]);
    }

    #[test]
    fn exact_overflow_is_undefined_not_panic() {
        let x = Symbol::intern("cmp_ovf");
        // x^8 at a huge value overflows i128 long before f64 range ends
        let f = RatFn::from_poly(Poly::symbol(x).pow(8));
        let c = Compiled::compile(&[f]);
        let huge = Rational::from_int(i128::MAX / 2);
        assert_eq!(c.eval_exact_once(&[huge]), vec![None]);
        // the float backend still yields a finite answer
        assert!(c.eval_f64_once(&[2.0])[0] == Some(256.0));
    }

    #[test]
    fn derivatives_are_compiled_and_correct() {
        let x = Symbol::intern("cmp_dx");
        // f = x/(x+1): f' = 1/(x+1)²
        let f = RatFn::new(Poly::symbol(x), &Poly::symbol(x) + &Poly::one());
        let c = Compiled::compile_with_derivatives(&[f], &[x]);
        assert_eq!(c.num_outputs(), 2);
        let out = c.eval_exact_once(&[Rational::from_int(1)]);
        assert_eq!(out[0], Some(r(1, 2)));
        assert_eq!(out[1], Some(r(1, 4)));
    }

    #[test]
    fn var_order_is_name_sorted() {
        // Interning order b-then-a, var order must still be by name.
        let b = Symbol::intern("cmp_zz_late");
        let a = Symbol::intern("cmp_aa_early");
        let f = RatFn::from_poly(&Poly::symbol(b) + &Poly::symbol(a));
        let c = Compiled::compile(&[f]);
        assert_eq!(c.vars(), &[a, b]);
        assert_eq!(c.var_index(b), Some(1));
    }
}
