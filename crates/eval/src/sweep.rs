//! The parameter-sweep engine: evaluate a compiled expression set over
//! a cartesian grid of symbol assignments, chunked across threads.
//!
//! A sweep is specified as a list of [`Axis`]es (each binding one
//! symbol to a list of exact rational values — evenly spaced via
//! [`Axis::linear`] or explicit via [`Axis::list`]) plus a fixed
//! [`Assignment`] for the remaining symbols. The grid is the cartesian
//! product of the axes in *row-major order with the last axis fastest*,
//! so row `i` of the output corresponds to [`Grid::point`]`(i)` — the
//! ordering is part of the output contract and identical no matter how
//! many threads evaluate it.
//!
//! Parallelism follows the workspace's standard-library threading
//! pattern (no runtime, no work stealing): the index range is split
//! into one contiguous chunk per thread, each thread evaluates its
//! chunk with a thread-local scratch buffer, and the chunks are
//! reassembled in order. Rows are independent, so the result is
//! deterministic — and for the `f64` backend *bit*-identical — at every
//! thread count.

use tpn_rational::Rational;
use tpn_symbolic::{Assignment, Symbol};

use crate::{Compiled, EvalError};

/// One sweep dimension: a symbol and the exact values it takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axis {
    symbol: Symbol,
    values: Vec<Rational>,
}

impl Axis {
    /// An axis over an explicit list of values.
    pub fn list(symbol: Symbol, values: Vec<Rational>) -> Axis {
        Axis { symbol, values }
    }

    /// An axis of `steps` evenly spaced values from `from` to `to`
    /// inclusive (`steps == 1` yields just `from`). All spacing is
    /// exact rational arithmetic — no float drift across the range.
    ///
    /// # Panics
    /// Panics if the spacing arithmetic overflows `i128`; use
    /// [`Axis::try_linear`] where the endpoints are untrusted.
    pub fn linear(symbol: Symbol, from: Rational, to: Rational, steps: usize) -> Axis {
        Axis::try_linear(symbol, from, to, steps).expect("axis spacing overflows i128")
    }

    /// [`Axis::linear`] with overflow-checked spacing arithmetic — the
    /// constructor for endpoints that arrive over the wire (a hostile
    /// `from`/`to` pair near `i128::MAX` must surface as an error, not
    /// panic a server worker).
    pub fn try_linear(
        symbol: Symbol,
        from: Rational,
        to: Rational,
        steps: usize,
    ) -> Result<Axis, EvalError> {
        let overflow = |_| EvalError::AxisOverflow { symbol };
        let values = match steps {
            0 => Vec::new(),
            1 => vec![from],
            _ => {
                let span = to.checked_sub(&from).map_err(overflow)?;
                let denom = Rational::from_int((steps - 1) as i128);
                let mut values = Vec::with_capacity(steps);
                for i in 0..steps {
                    let offset = span
                        .checked_mul(&Rational::from_int(i as i128))
                        .and_then(|x| x.checked_div(&denom))
                        .and_then(|x| from.checked_add(&x))
                        .map_err(overflow)?;
                    values.push(offset);
                }
                values
            }
        };
        Ok(Axis { symbol, values })
    }

    /// The swept symbol.
    pub fn symbol(&self) -> Symbol {
        self.symbol
    }

    /// The values this axis takes, in sweep order.
    pub fn values(&self) -> &[Rational] {
        &self.values
    }
}

/// A validated cartesian grid of sweep axes.
#[derive(Debug, Clone)]
pub struct Grid {
    axes: Vec<Axis>,
    points: u64,
}

impl Grid {
    /// Validate and build a grid. Axes must be non-empty and bind
    /// pairwise distinct symbols. A grid with no axes has exactly one
    /// point (the fixed assignment alone).
    pub fn new(axes: Vec<Axis>) -> Result<Grid, EvalError> {
        let mut points: u64 = 1;
        for (i, a) in axes.iter().enumerate() {
            if a.values.is_empty() {
                return Err(EvalError::EmptyAxis { symbol: a.symbol });
            }
            if axes[..i].iter().any(|b| b.symbol == a.symbol) {
                return Err(EvalError::DuplicateSymbol { symbol: a.symbol });
            }
            points = points.saturating_mul(a.values.len() as u64);
        }
        Ok(Grid { axes, points })
    }

    /// The axes, in specification order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Total number of grid points (product of the axis lengths,
    /// saturating at `u64::MAX`).
    pub fn num_points(&self) -> u64 {
        self.points
    }

    /// Decode point `idx` into per-axis coordinate values, appended to
    /// `out` (cleared first) in axis order.
    pub fn point(&self, idx: u64, out: &mut Vec<Rational>) {
        out.clear();
        out.resize(self.axes.len(), Rational::ZERO);
        let mut rest = idx;
        for (k, a) in self.axes.iter().enumerate().rev() {
            let len = a.values.len() as u64;
            out[k] = a.values[(rest % len) as usize];
            rest /= len;
        }
    }
}

/// Sweep execution knobs.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (clamped to at least 1). The output is identical
    /// at every thread count.
    pub threads: usize,
    /// Upper bound on the number of grid points; larger grids are
    /// rejected with [`EvalError::TooManyPoints`] before any work runs.
    pub max_points: u64,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            threads: 4,
            max_points: 1_000_000,
        }
    }
}

/// Where each compiled input variable gets its value from.
enum VarSource {
    Fixed(Rational),
    AxisIndex(usize),
}

/// Resolve every compiled variable to an axis or a fixed binding.
fn bind(c: &Compiled, grid: &Grid, fixed: &Assignment) -> Result<Vec<VarSource>, EvalError> {
    for a in grid.axes() {
        if fixed.contains(a.symbol()) {
            return Err(EvalError::DuplicateSymbol { symbol: a.symbol() });
        }
    }
    c.vars()
        .iter()
        .map(|&v| {
            if let Some(k) = grid.axes().iter().position(|a| a.symbol() == v) {
                Ok(VarSource::AxisIndex(k))
            } else if let Some(x) = fixed.get(v) {
                Ok(VarSource::Fixed(*x))
            } else {
                Err(EvalError::UnboundSymbol { symbol: v })
            }
        })
        .collect()
}

/// Split `0..total` into at most `threads` contiguous chunks.
fn chunks(total: u64, threads: usize) -> Vec<(u64, u64)> {
    let threads = (threads.max(1) as u64).min(total.max(1));
    let base = total / threads;
    let extra = total % threads;
    let mut out = Vec::with_capacity(threads as usize);
    let mut start = 0;
    for i in 0..threads {
        let len = base + u64::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Evaluate `c` over the grid in the `f64` backend. Row `i` holds one
/// `Option<f64>` per compiled output (`None` where undefined) for
/// [`Grid::point`]`(i)`.
pub fn sweep_f64(
    c: &Compiled,
    grid: &Grid,
    fixed: &Assignment,
    opts: &SweepOptions,
) -> Result<Vec<Vec<Option<f64>>>, EvalError> {
    let sources = bind(c, grid, fixed)?;
    let total = checked_total(grid, opts)?;
    // Per-axis value tables in f64, decoded once.
    let tables: Vec<Vec<f64>> = grid
        .axes()
        .iter()
        .map(|a| a.values().iter().map(Rational::to_f64).collect())
        .collect();
    let eval_chunk = |start: u64, end: u64| -> Vec<Vec<Option<f64>>> {
        let mut rows = Vec::with_capacity((end - start) as usize);
        let mut scratch: Vec<f64> = Vec::new();
        let mut point = vec![0.0f64; c.vars().len()];
        let mut coords: Vec<usize> = vec![0; grid.axes().len()];
        for idx in start..end {
            decode(grid, idx, &mut coords);
            for (slot, src) in point.iter_mut().zip(&sources) {
                *slot = match src {
                    VarSource::Fixed(x) => x.to_f64(),
                    VarSource::AxisIndex(k) => tables[*k][coords[*k]],
                };
            }
            let mut out = vec![None; c.num_outputs()];
            c.eval_f64(&point, &mut scratch, &mut out);
            rows.push(out);
        }
        rows
    };
    Ok(run_chunked(total, opts.threads, eval_chunk))
}

/// Evaluate `c` over the grid in the exact backend. Row `i` holds one
/// `Option<Rational>` per output (`None` where the value is undefined
/// or an intermediate overflowed).
pub fn sweep_exact(
    c: &Compiled,
    grid: &Grid,
    fixed: &Assignment,
    opts: &SweepOptions,
) -> Result<Vec<Vec<Option<Rational>>>, EvalError> {
    let sources = bind(c, grid, fixed)?;
    let total = checked_total(grid, opts)?;
    let eval_chunk = |start: u64, end: u64| -> Vec<Vec<Option<Rational>>> {
        let mut rows = Vec::with_capacity((end - start) as usize);
        let mut scratch: Vec<Option<Rational>> = Vec::new();
        let mut point = vec![Rational::ZERO; c.vars().len()];
        let mut coords: Vec<usize> = vec![0; grid.axes().len()];
        for idx in start..end {
            decode(grid, idx, &mut coords);
            for (slot, src) in point.iter_mut().zip(&sources) {
                *slot = match src {
                    VarSource::Fixed(x) => *x,
                    VarSource::AxisIndex(k) => grid.axes()[*k].values()[coords[*k]],
                };
            }
            let mut out = vec![None; c.num_outputs()];
            c.eval_exact(&point, &mut scratch, &mut out);
            rows.push(out);
        }
        rows
    };
    Ok(run_chunked(total, opts.threads, eval_chunk))
}

/// The seed-grid hook of the optimizer: evaluate `c` over the grid in
/// the `f64` backend and return only the **best** feasible row — its
/// index and its value of output `score` — instead of materialising
/// every row. A row is a candidate when output `score` is defined and
/// `feasible` accepts the full output row (the optimizer passes the
/// validity-region membership test here). `maximize` picks the
/// direction; ties resolve to the lowest grid index, and chunks are
/// reduced in index order, so the result is identical at every thread
/// count. Returns `Ok(None)` when no row is feasible.
///
/// # Panics
/// Panics if `score` is not an output index of `c`.
pub fn argbest_f64(
    c: &Compiled,
    grid: &Grid,
    fixed: &Assignment,
    opts: &SweepOptions,
    score: usize,
    maximize: bool,
    feasible: impl Fn(&[Option<f64>]) -> bool + Sync,
) -> Result<Option<(u64, f64)>, EvalError> {
    assert!(score < c.num_outputs(), "score output out of range");
    let sources = bind(c, grid, fixed)?;
    let total = checked_total(grid, opts)?;
    let tables: Vec<Vec<f64>> = grid
        .axes()
        .iter()
        .map(|a| a.values().iter().map(Rational::to_f64).collect())
        .collect();
    let eval_chunk = |start: u64, end: u64| -> Vec<Option<(u64, f64)>> {
        let mut best: Option<(u64, f64)> = None;
        let mut scratch: Vec<f64> = Vec::new();
        let mut point = vec![0.0f64; c.vars().len()];
        let mut coords: Vec<usize> = vec![0; grid.axes().len()];
        let mut out = vec![None; c.num_outputs()];
        for idx in start..end {
            decode(grid, idx, &mut coords);
            for (slot, src) in point.iter_mut().zip(&sources) {
                *slot = match src {
                    VarSource::Fixed(x) => x.to_f64(),
                    VarSource::AxisIndex(k) => tables[*k][coords[*k]],
                };
            }
            c.eval_f64(&point, &mut scratch, &mut out);
            let Some(v) = out[score] else { continue };
            if !feasible(&out) {
                continue;
            }
            // Strict comparison: an equal later value never displaces
            // an earlier index, which is what makes the fold
            // associative across chunk boundaries.
            let better = match best {
                None => true,
                Some((_, b)) => {
                    if maximize {
                        v > b
                    } else {
                        v < b
                    }
                }
            };
            if better {
                best = Some((idx, v));
            }
        }
        vec![best]
    };
    let per_chunk = run_chunked(total, opts.threads, eval_chunk);
    let mut best: Option<(u64, f64)> = None;
    for candidate in per_chunk.into_iter().flatten() {
        let better = match best {
            None => true,
            Some((_, b)) => {
                if maximize {
                    candidate.1 > b
                } else {
                    candidate.1 < b
                }
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    Ok(best)
}

fn checked_total(grid: &Grid, opts: &SweepOptions) -> Result<u64, EvalError> {
    let total = grid.num_points();
    if total > opts.max_points {
        return Err(EvalError::TooManyPoints {
            points: total,
            max: opts.max_points,
        });
    }
    Ok(total)
}

/// Decode point `idx` into per-axis value *indices* (cheaper than
/// materialising the rational coordinates per point).
fn decode(grid: &Grid, idx: u64, coords: &mut [usize]) {
    let mut rest = idx;
    for (k, a) in grid.axes().iter().enumerate().rev() {
        let len = a.values().len() as u64;
        coords[k] = (rest % len) as usize;
        rest /= len;
    }
}

/// Run `eval_chunk` over `0..total` split across `threads`, preserving
/// row order.
fn run_chunked<T: Send>(
    total: u64,
    threads: usize,
    eval_chunk: impl Fn(u64, u64) -> Vec<T> + Sync,
) -> Vec<T> {
    let ranges = chunks(total, threads);
    if ranges.len() <= 1 {
        return eval_chunk(0, total);
    }
    let mut parts: Vec<Vec<T>> = Vec::new();
    let eval_chunk = &eval_chunk;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(s, e)| scope.spawn(move || eval_chunk(s, e)))
            .collect();
        parts = handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker"))
            .collect();
    });
    let mut rows = Vec::with_capacity(total as usize);
    for p in parts {
        rows.extend(p);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpn_symbolic::{Poly, RatFn};

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn linear_axis_is_exact_and_inclusive() {
        let s = Symbol::intern("sw_lin");
        let a = Axis::linear(s, r(1, 1), r(2, 1), 5);
        let vals: Vec<Rational> = a.values().to_vec();
        assert_eq!(vals, vec![r(1, 1), r(5, 4), r(3, 2), r(7, 4), r(2, 1)]);
        assert_eq!(Axis::linear(s, r(9, 1), r(99, 1), 1).values(), &[r(9, 1)]);
    }

    #[test]
    fn grid_order_is_row_major_last_axis_fastest() {
        let a = Symbol::intern("sw_ga");
        let b = Symbol::intern("sw_gb");
        let grid = Grid::new(vec![
            Axis::list(a, vec![r(1, 1), r(2, 1)]),
            Axis::list(b, vec![r(10, 1), r(20, 1), r(30, 1)]),
        ])
        .unwrap();
        assert_eq!(grid.num_points(), 6);
        let mut p = Vec::new();
        grid.point(0, &mut p);
        assert_eq!(p, vec![r(1, 1), r(10, 1)]);
        grid.point(1, &mut p);
        assert_eq!(p, vec![r(1, 1), r(20, 1)]);
        grid.point(3, &mut p);
        assert_eq!(p, vec![r(2, 1), r(10, 1)]);
        grid.point(5, &mut p);
        assert_eq!(p, vec![r(2, 1), r(30, 1)]);
    }

    #[test]
    fn grid_rejects_duplicates_and_empty_axes() {
        let s = Symbol::intern("sw_dup");
        let err = Grid::new(vec![
            Axis::list(s, vec![r(1, 1)]),
            Axis::list(s, vec![r(2, 1)]),
        ])
        .unwrap_err();
        assert!(matches!(err, EvalError::DuplicateSymbol { .. }));
        let err = Grid::new(vec![Axis::list(s, Vec::new())]).unwrap_err();
        assert!(matches!(err, EvalError::EmptyAxis { .. }));
    }

    #[test]
    fn sweep_matches_single_point_eval_and_is_thread_invariant() {
        let x = Symbol::intern("sw_x");
        let y = Symbol::intern("sw_y");
        // f = x / (x + y)
        let f = RatFn::new(Poly::symbol(x), &Poly::symbol(x) + &Poly::symbol(y));
        let c = Compiled::compile(std::slice::from_ref(&f));
        let grid = Grid::new(vec![Axis::linear(x, r(1, 1), r(10, 1), 19)]).unwrap();
        let fixed = Assignment::new().with(y, r(3, 1));
        let opts1 = SweepOptions {
            threads: 1,
            ..SweepOptions::default()
        };
        let opts4 = SweepOptions {
            threads: 4,
            ..SweepOptions::default()
        };
        let rows1 = sweep_f64(&c, &grid, &fixed, &opts1).unwrap();
        let rows4 = sweep_f64(&c, &grid, &fixed, &opts4).unwrap();
        assert_eq!(rows1, rows4, "bit-identical at any thread count");
        let exact = sweep_exact(&c, &grid, &fixed, &opts4).unwrap();
        assert_eq!(rows1.len(), 19);
        let mut p = Vec::new();
        for (i, row) in exact.iter().enumerate() {
            grid.point(i as u64, &mut p);
            let a = Assignment::new().with(x, p[0]).with(y, r(3, 1));
            assert_eq!(row[0], f.eval(&a));
            let approx = rows1[i][0].unwrap();
            let want = row[0].unwrap().to_f64();
            assert!((approx - want).abs() <= 1e-12 * want.abs());
        }
    }

    #[test]
    fn unbound_and_duplicate_bindings_are_rejected() {
        let x = Symbol::intern("sw_ub_x");
        let y = Symbol::intern("sw_ub_y");
        let f = RatFn::from_poly(&Poly::symbol(x) + &Poly::symbol(y));
        let c = Compiled::compile(&[f]);
        let grid = Grid::new(vec![Axis::list(x, vec![r(1, 1)])]).unwrap();
        let opts = SweepOptions::default();
        let err = sweep_f64(&c, &grid, &Assignment::new(), &opts).unwrap_err();
        assert_eq!(err, EvalError::UnboundSymbol { symbol: y });
        let dup = Assignment::new().with(x, r(1, 1)).with(y, r(1, 1));
        let err = sweep_f64(&c, &grid, &dup, &opts).unwrap_err();
        assert_eq!(err, EvalError::DuplicateSymbol { symbol: x });
    }

    #[test]
    fn point_cap_is_enforced() {
        let x = Symbol::intern("sw_cap");
        let f = RatFn::symbol(x);
        let c = Compiled::compile(&[f]);
        let grid = Grid::new(vec![Axis::linear(x, r(0, 1), r(1, 1), 100)]).unwrap();
        let opts = SweepOptions {
            threads: 1,
            max_points: 99,
        };
        let err = sweep_f64(&c, &grid, &Assignment::new(), &opts).unwrap_err();
        assert_eq!(
            err,
            EvalError::TooManyPoints {
                points: 100,
                max: 99
            }
        );
    }

    #[test]
    fn argbest_finds_the_peak_and_is_thread_invariant() {
        let x = Symbol::intern("sw_ab_x");
        // f = x·(4−x) has its maximum at x = 2 (value 4); also expose x
        // itself so the feasibility predicate can be exercised.
        let p = &Poly::symbol(x) * &(Poly::constant(r(4, 1)) - Poly::symbol(x));
        let f = RatFn::from_poly(p);
        let id = RatFn::symbol(x);
        let c = Compiled::compile(&[f, id]);
        let grid = Grid::new(vec![Axis::linear(x, r(0, 1), r(4, 1), 41)]).unwrap();
        let fixed = Assignment::new();
        let one = SweepOptions {
            threads: 1,
            ..SweepOptions::default()
        };
        let four = SweepOptions {
            threads: 4,
            ..SweepOptions::default()
        };
        let best1 = argbest_f64(&c, &grid, &fixed, &one, 0, true, |_| true).unwrap();
        let best4 = argbest_f64(&c, &grid, &fixed, &four, 0, true, |_| true).unwrap();
        assert_eq!(best1, best4, "identical at any thread count");
        let (idx, v) = best1.unwrap();
        assert_eq!(idx, 20, "x = 2 is grid point 20");
        assert_eq!(v, 4.0);
        // minimisation picks an endpoint; ties (f(0) = f(4) = 0) go to
        // the lowest index
        let (idx, v) = argbest_f64(&c, &grid, &fixed, &four, 0, false, |_| true)
            .unwrap()
            .unwrap();
        assert_eq!((idx, v), (0, 0.0));
        // the feasibility predicate excludes the peak: best moves to
        // the closest feasible point
        let best = argbest_f64(&c, &grid, &fixed, &four, 0, true, |row| {
            row[1].is_some_and(|xv| xv > 2.05)
        })
        .unwrap()
        .unwrap();
        assert_eq!(best.0, 21, "first point right of the excluded peak");
        // nothing feasible → None
        let none = argbest_f64(&c, &grid, &fixed, &four, 0, true, |_| false).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn empty_grid_is_one_fixed_point() {
        let x = Symbol::intern("sw_empty");
        let f = RatFn::symbol(x);
        let c = Compiled::compile(&[f]);
        let grid = Grid::new(Vec::new()).unwrap();
        assert_eq!(grid.num_points(), 1);
        let fixed = Assignment::new().with(x, r(7, 2));
        let rows = sweep_exact(&c, &grid, &fixed, &SweepOptions::default()).unwrap();
        assert_eq!(rows, vec![vec![Some(r(7, 2))]]);
    }
}
