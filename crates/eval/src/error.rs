//! Errors of the compiler and the sweep engine.

use std::fmt;

use tpn_symbolic::Symbol;

/// Why a compilation or a sweep could not be carried out.
///
/// Per-*point* evaluation failures (a denominator vanishing at one grid
/// point, an exact intermediate overflowing `i128`) are **not** errors:
/// they surface as an undefined value for that point so the rest of the
/// sweep is unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A symbol used by the compiled expressions is neither a sweep axis
    /// nor fixed by the base assignment.
    UnboundSymbol {
        /// The unbound symbol's interned name.
        symbol: Symbol,
    },
    /// The same symbol appears on two sweep axes (or on an axis and in
    /// the fixed bindings).
    DuplicateSymbol {
        /// The doubly-bound symbol.
        symbol: Symbol,
    },
    /// A sweep axis has no values, so the grid is empty.
    EmptyAxis {
        /// The empty axis' symbol.
        symbol: Symbol,
    },
    /// The grid has more points than the caller-supplied cap.
    TooManyPoints {
        /// Number of points the grid would have.
        points: u64,
        /// The configured maximum.
        max: u64,
    },
    /// Exact axis arithmetic left `i128` range while spacing the
    /// values (e.g. an endpoint near `i128::MAX` with a fractional
    /// other endpoint).
    AxisOverflow {
        /// The overflowing axis' symbol.
        symbol: Symbol,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundSymbol { symbol } => {
                write!(f, "symbol {symbol} is neither swept nor fixed")
            }
            EvalError::DuplicateSymbol { symbol } => {
                write!(f, "symbol {symbol} is bound more than once")
            }
            EvalError::EmptyAxis { symbol } => {
                write!(f, "sweep axis {symbol} has no values")
            }
            EvalError::TooManyPoints { points, max } => {
                write!(f, "grid has {points} points, more than the maximum {max}")
            }
            EvalError::AxisOverflow { symbol } => {
                write!(f, "axis {symbol}: exact value spacing overflows i128")
            }
        }
    }
}

impl std::error::Error for EvalError {}
