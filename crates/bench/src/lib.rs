//! Benchmark harness crate (Criterion benches live in `benches/`).

#[cfg(target_os = "linux")]
pub mod loadgen;
