//! Benchmark harness crate (Criterion benches live in `benches/`).
