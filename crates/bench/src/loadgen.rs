//! An epoll-based HTTP load generator for the serving-tier benches.
//!
//! One thread drives every client connection through a
//! [`Poller`] event loop — the same reactor
//! primitives the server's listener uses — so a single core can hold
//! tens of thousands of concurrent keep-alive connections against
//! `tpn serve`. Responses are reassembled with the shared
//! [`ResponseParser`], which also
//! decodes the chunked framing the server streams large bodies with.
//!
//! Two operating modes mirror the two listeners:
//!
//! - `keep_alive: true` — each connection issues its requests
//!   back-to-back on one socket (the epoll listener's design center);
//! - `keep_alive: false` — every request carries `Connection: close`
//!   and the connection redials before its next request (all the
//!   threaded listener supports).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use tpn_aio::http1::ResponseParser;
use tpn_aio::poll::{interest, Event, Poller};

/// One request shape in the round-robin mix.
#[derive(Clone, Debug)]
pub struct RequestSpec {
    pub method: String,
    pub target: String,
    pub body: String,
}

impl RequestSpec {
    pub fn new(method: &str, target: &str, body: &str) -> RequestSpec {
        RequestSpec {
            method: method.to_string(),
            target: target.to_string(),
            body: body.to_string(),
        }
    }

    fn wire(&self, close: bool) -> Vec<u8> {
        format!(
            "{} {} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n{}\r\n{}",
            self.method,
            self.target,
            self.body.len(),
            if close { "Connection: close\r\n" } else { "" },
            self.body,
        )
        .into_bytes()
    }
}

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent connections held open.
    pub connections: usize,
    /// Total requests to complete across all connections.
    pub requests: u64,
    /// Keep-alive (epoll mode) or close-and-redial (threaded mode).
    pub keep_alive: bool,
    /// The request mix, issued round-robin per completed response.
    pub mix: Vec<RequestSpec>,
    /// Abort the run (counting unfinished requests as errors) after
    /// this long.
    pub deadline: Duration,
}

/// What happened.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadReport {
    /// Responses fully received with a 2xx status.
    pub ok: u64,
    /// Responses fully received with any other status.
    pub non_2xx: u64,
    /// Requests lost to transport errors, parse failures, redial
    /// failures, or the run deadline.
    pub errors: u64,
    /// Wall-clock time from first byte sent to last response.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Completed responses (any status) per second of wall clock.
    pub fn req_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.ok + self.non_2xx) as f64 / secs
    }
}

struct Client {
    stream: TcpStream,
    parser: ResponseParser,
    out: Vec<u8>,
    out_pos: usize,
    readable: bool,
    writable: bool,
    /// A request is in flight on this connection.
    awaiting: bool,
    /// Requests this connection has issued (drives the mix index).
    issued: u64,
}

/// Outcome of driving a client through one readiness event.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ClientState {
    /// Still usable; may or may not have a request in flight.
    Alive,
    /// Peer closed after a complete exchange (close mode, or the
    /// server's per-connection request cap) — redial, not an error.
    Closed,
    /// Transport or parse failure with a response still owed.
    Failed,
}

/// Drive `cfg.requests` requests against `addr`. Returns the counts
/// and wall-clock; per-request latency lives in the server's own
/// histograms (`/metrics`), where it is measured without client-side
/// scheduling noise.
pub fn run(addr: SocketAddr, cfg: &LoadConfig) -> io::Result<LoadReport> {
    assert!(!cfg.mix.is_empty(), "request mix must not be empty");
    let connections = cfg.connections.max(1);
    // Client fds plus the poller itself, with slack for redials.
    let _ = tpn_aio::rlimit::ensure_nofile(connections as u64 * 2 + 256);
    let mut poller = Poller::new()?;
    let mut report = LoadReport::default();
    let mut clients: Vec<Option<Client>> = Vec::with_capacity(connections);
    let mut issued_total: u64 = 0;

    let dial = |poller: &Poller, token: u64| -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        poller.add(stream.as_raw_fd(), token, interest::READ | interest::WRITE)?;
        Ok(Client {
            stream,
            parser: ResponseParser::new(),
            out: Vec::new(),
            out_pos: 0,
            readable: false,
            writable: true,
            awaiting: false,
            issued: 0,
        })
    };

    let started = Instant::now();
    for token in 0..connections {
        match dial(&poller, token as u64) {
            Ok(client) => clients.push(Some(client)),
            Err(_) => {
                clients.push(None);
                report.errors += 1;
            }
        }
    }

    // Seed every live connection with its first request.
    for (token, slot) in clients.iter_mut().enumerate() {
        if let Some(client) = slot {
            if issued_total < cfg.requests {
                let spec = &cfg.mix[(issued_total % cfg.mix.len() as u64) as usize];
                client.out = spec.wire(!cfg.keep_alive);
                client.out_pos = 0;
                client.awaiting = true;
                client.issued += 1;
                issued_total += 1;
                let _ = token;
            }
        }
    }

    let mut events: Vec<Event> = Vec::new();
    let deadline = started + cfg.deadline;
    loop {
        let done = report.ok + report.non_2xx + report.errors;
        let in_flight = clients.iter().flatten().filter(|c| c.awaiting).count() as u64;
        if done >= cfg.requests || (in_flight == 0 && issued_total >= cfg.requests) {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            report.errors += cfg.requests.saturating_sub(done);
            break;
        }
        poller.wait(
            &mut events,
            Some((deadline - now).min(Duration::from_millis(500))),
        )?;
        for event in &events {
            let token = event.token as usize;
            let Some(slot) = clients.get_mut(token) else {
                continue;
            };
            let Some(client) = slot.as_mut() else {
                continue;
            };
            if event.readable || event.hangup {
                client.readable = true;
            }
            if event.writable {
                client.writable = true;
            }
            let state = drive_client(client, &mut report);
            if state != ClientState::Alive || (!cfg.keep_alive && !client.awaiting) {
                // Redial on both clean closes (close mode exhausts the
                // socket per request) and failures, so the target
                // request count is still attempted.
                if state == ClientState::Failed {
                    report.errors += 1;
                }
                let issued = client.issued;
                *slot = None;
                if issued_total < cfg.requests {
                    match dial(&poller, token as u64) {
                        Ok(mut fresh) => {
                            fresh.issued = issued;
                            let spec = &cfg.mix[(issued_total % cfg.mix.len() as u64) as usize];
                            fresh.out = spec.wire(!cfg.keep_alive);
                            fresh.out_pos = 0;
                            fresh.awaiting = true;
                            fresh.issued += 1;
                            issued_total += 1;
                            *slot = Some(fresh);
                        }
                        Err(_) => report.errors += 1,
                    }
                }
            } else if cfg.keep_alive && !client.awaiting && issued_total < cfg.requests {
                let spec = &cfg.mix[(issued_total % cfg.mix.len() as u64) as usize];
                client.out = spec.wire(false);
                client.out_pos = 0;
                client.awaiting = true;
                client.issued += 1;
                issued_total += 1;
                if drive_client(client, &mut report) == ClientState::Failed {
                    report.errors += 1;
                    *slot = None;
                }
            }
        }
    }
    report.elapsed = started.elapsed();
    Ok(report)
}

/// Flush pending request bytes and consume whatever responses have
/// arrived.
fn drive_client(client: &mut Client, report: &mut LoadReport) -> ClientState {
    // Write side.
    while client.writable && client.out_pos < client.out.len() {
        match client.stream.write(&client.out[client.out_pos..]) {
            Ok(0) => return ClientState::Failed,
            Ok(n) => client.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => client.writable = false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ClientState::Failed,
        }
    }
    // Read side. Responses are polled as bytes arrive, so by the time
    // EOF is observed any complete response has already been counted.
    let mut chunk = [0u8; 16 * 1024];
    while client.readable {
        match client.stream.read(&mut chunk) {
            Ok(0) => {
                return if client.awaiting {
                    ClientState::Failed
                } else {
                    ClientState::Closed
                };
            }
            Ok(n) => {
                client.parser.feed(&chunk[..n]);
                loop {
                    match client.parser.poll() {
                        Ok(Some(resp)) => {
                            if resp.status / 100 == 1 {
                                continue; // interim 100 Continue
                            }
                            client.awaiting = false;
                            if resp.status / 100 == 2 {
                                report.ok += 1;
                            } else {
                                report.non_2xx += 1;
                            }
                            if resp.close {
                                return ClientState::Closed;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return ClientState::Failed,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => client.readable = false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ClientState::Failed,
        }
    }
    ClientState::Alive
}
