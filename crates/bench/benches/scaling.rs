//! E10 — scaling ablations beyond the paper's example: how the
//! construction and the rate solvers behave as the model grows.
//!
//! * TRG construction vs. cycle length, fork/join width and
//!   producer–consumer capacity;
//! * serial vs. parallel frontier expansion (the `parallel` feature of
//!   `tpn-reach`) on the widest parametric families;
//! * decision-graph rate solving: dense-kernel vs. dense-fixed vs.
//!   sparse-fixed elimination on lossy forwarding chains (the sparse
//!   representation is the ablation called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpn_core::{solve_rates_with, DecisionGraph, RateMethod};
use tpn_protocols::families;
use tpn_rational::Rational;
use tpn_reach::{build_trg, NumericDomain, TrgOptions};

fn bench_trg_scaling(c: &mut Criterion) {
    let domain = NumericDomain::new();
    let opts = TrgOptions::default();
    let mut g = c.benchmark_group("scaling/trg_cycle_length");
    for n in [4usize, 16, 64, 256] {
        let times: Vec<Rational> = (1..=n).map(|i| Rational::from_int(i as i128)).collect();
        let net = families::cycle(&times);
        g.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| build_trg(black_box(net), &domain, &opts).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("scaling/trg_fork_join_width");
    for n in [2usize, 4, 8, 12] {
        let net = families::fork_join(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| build_trg(black_box(net), &domain, &opts).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("scaling/trg_buffer_capacity");
    for cap in [1u32, 4, 16, 64] {
        let net = families::producer_consumer(cap, Rational::from_int(2), Rational::from_int(5));
        g.bench_with_input(BenchmarkId::from_parameter(cap), &net, |b, net| {
            b.iter(|| build_trg(black_box(net), &domain, &opts).unwrap())
        });
    }
    g.finish();
}

/// Serial (`threads: 1`) vs. parallel (`threads: 0`, i.e. all cores)
/// TRG construction. Fork/join nets have the widest breadth-first
/// frontiers of the parametric families, so they are where frontier
/// fan-out can actually win; the cycle family (frontier width 1) is
/// included as the worst case for the parallel path.
fn bench_trg_parallel(c: &mut Criterion) {
    let domain = NumericDomain::new();
    let serial = TrgOptions::default();
    let parallel = TrgOptions {
        threads: 0,
        ..TrgOptions::default()
    };

    let mut g = c.benchmark_group("scaling/trg_serial_vs_parallel/fork_join");
    for n in [8usize, 12, 14] {
        let net = families::fork_join(n);
        g.bench_with_input(BenchmarkId::new("serial", n), &net, |b, net| {
            b.iter(|| build_trg(black_box(net), &domain, &serial).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &net, |b, net| {
            b.iter(|| build_trg(black_box(net), &domain, &parallel).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("scaling/trg_serial_vs_parallel/cycle");
    let times: Vec<Rational> = (1..=256).map(Rational::from_int).collect();
    let net = families::cycle(&times);
    g.bench_with_input(BenchmarkId::new("serial", 256), &net, |b, net| {
        b.iter(|| build_trg(black_box(net), &domain, &serial).unwrap())
    });
    g.bench_with_input(BenchmarkId::new("parallel", 256), &net, |b, net| {
        b.iter(|| build_trg(black_box(net), &domain, &parallel).unwrap())
    });
    g.finish();
}

fn bench_rate_solvers(c: &mut Criterion) {
    let domain = NumericDomain::new();
    let opts = TrgOptions::default();
    // 32 hops (65 decision edges) is the largest chain whose exact
    // elimination stays inside i128 with 1/10 loss probabilities;
    // beyond that the coefficient growth of exact arithmetic overflows
    // (a documented limitation of the checked-i128 rational substrate).
    for hops in [4usize, 16, 32] {
        let (net, _) = families::lossy_chain(hops, Rational::new(1, 10), Rational::from_int(2));
        let trg = build_trg(&net, &domain, &opts).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
        eprintln!(
            "[scaling] lossy_chain({hops}): {} states, {} decision edges",
            trg.num_states(),
            dg.num_edges()
        );
        let mut g = c.benchmark_group(format!("scaling/rate_solver_{hops}_hops"));
        for (name, method) in [
            ("dense_kernel", RateMethod::DenseKernel),
            ("dense_fixed", RateMethod::DenseFixed),
            ("sparse_fixed", RateMethod::SparseFixed),
        ] {
            g.bench_function(name, |b| {
                b.iter(|| black_box(solve_rates_with(&dg, 0, method).unwrap()))
            });
        }
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_trg_scaling,
    bench_trg_parallel,
    bench_rate_solvers
);
criterion_main!(benches);
