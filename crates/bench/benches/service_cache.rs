//! E11 — serving throughput of the analysis daemon: cold misses vs.
//! warm hits of the content-addressed result cache.
//!
//! Both benchmarks measure the *full in-process request path* of
//! `tpn-service` (`Service::respond`: parse → digest → cache →
//! serialize) on a producer–consumer net with buffer capacity 32 — a
//! small `.tpn` document whose reachability graph is large, i.e. the
//! regime a result cache is for:
//!
//! * `cold_miss` appends a fresh (unused) place per request, so every
//!   request is a distinct digest and runs the whole exact pipeline
//!   (TRG → decision graph → rational null-space rates → JSON);
//! * `warm_hit` repeats the identical request, so after the first
//!   iteration every request is answered from the cache — the residual
//!   cost is parse + digest + shard lookup.
//!
//! The hit/miss request-rate ratio is the headroom the cache buys a
//! serving deployment with repeated nets; `BENCH_1.json` records it.
//! The paper's Figure-1 net is included as a small-net reference point
//! (its pipeline is so cheap that parse+digest dominate both sides).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tpn_protocols::families;
use tpn_rational::Rational;
use tpn_service::{RequestKind, Service, ServiceConfig};

const FIG1: &str = include_str!("../../../tests/fixtures/fig1.tpn");

fn bench_one(g: &mut criterion::BenchmarkGroup<'_>, label: &str, src: &str) {
    // Every iteration a fresh digest: an appended unused place changes
    // the content hash without touching the pipeline's behaviour.
    g.bench_with_input(BenchmarkId::new("cold_miss", label), &src, |b, src| {
        let service = Service::new(ServiceConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let unique = format!("{src}\nplace cold_marker_{i}\n");
            let (status, body) = service.respond(RequestKind::Analyze, black_box(&unique));
            assert_eq!(status, 200, "{body}");
            black_box(body)
        })
    });

    // Identical request every iteration: after the first, pure hits.
    g.bench_with_input(BenchmarkId::new("warm_hit", label), &src, |b, src| {
        let service = Service::new(ServiceConfig::default());
        b.iter(|| {
            let (status, body) = service.respond(RequestKind::Analyze, black_box(src));
            assert_eq!(status, 200, "{body}");
            black_box(body)
        })
    });
}

fn bench_service_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("service/analyze_request");
    g.throughput(Throughput::Elements(1));
    let prodcons =
        families::producer_consumer(32, Rational::from_int(2), Rational::from_int(5)).to_tpn();
    bench_one(&mut g, "producer_consumer_32", &prodcons);
    bench_one(&mut g, "fig1", FIG1);
    g.finish();
}

criterion_group!(benches, bench_service_cache);
criterion_main!(benches);
