//! Ablation: cost of the Fourier–Motzkin decision procedure, the piece
//! that makes the symbolic construction possible (paper §3's "procedure
//! for evaluating the smallest value in a set of expressions, given a
//! set of timing constraints").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpn_symbolic::{ConstraintSet, LinExpr, Symbol};

/// A chain x0 ≤ x1 ≤ … ≤ x(n−1) plus positivity, asking whether
/// x(n−1) ≥ x0 is entailed (worst-case: the full chain is needed).
fn chain(n: usize) -> (ConstraintSet, LinExpr, LinExpr) {
    let xs: Vec<LinExpr> = (0..n)
        .map(|i| LinExpr::symbol(Symbol::intern(&format!("bench_chain_{i}"))))
        .collect();
    let mut cs = ConstraintSet::new();
    for w in xs.windows(2) {
        cs.assume_le(w[0].clone(), w[1].clone());
    }
    for x in &xs {
        cs.assume_ge(x.clone(), LinExpr::zero());
    }
    (cs, xs[0].clone(), xs[n - 1].clone())
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("constraints/entailment_chain");
    for n in [4usize, 8, 16, 24] {
        let (cs, lo, hi) = chain(n);
        assert_eq!(cs.entails_ge(&hi, &lo), Ok(true));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(cs.entails_ge(&hi, &lo).unwrap()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("constraints/min_of");
    for n in [2usize, 4, 8] {
        let (cs, _, _) = chain(n);
        let cands: Vec<LinExpr> = (0..n)
            .map(|i| LinExpr::symbol(Symbol::intern(&format!("bench_chain_{i}"))))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(cs.min_of(&cands).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
