//! E13 — incremental what-if re-timing vs. cold per-net sessions.
//!
//! Both sides answer the same question: `analyze` a 48-hop lossy relay
//! chain at 64 different per-hop firing times `F(hop3)`/`F(drop3)`
//! (moved together, so the hop/drop completion tie recorded in the
//! lift's validity region is preserved).
//!
//! * `whatif_batch_64` sends ONE in-process `POST /whatif` request with
//!   64 perturbations against a fresh `Service` — the base session's
//!   symbolic lift is built once and every perturbation substitutes
//!   through its re-timing template and closed-form rates (no
//!   reachability rebuild, no rate re-solve);
//! * `cold_sessions_64` sends 64 in-process `/analyze` requests, one
//!   per perturbed net text, against a fresh `Service` — each pays the
//!   full pipeline (parse → TRG → decision graph → rates →
//!   performance → JSON). On this net the dense rate solve over 96
//!   decision-graph edges dominates, which is exactly the work the
//!   lift's closed forms amortise.
//!
//! Every service is fresh per iteration, so neither side ever hits the
//! body cache: the measured difference is re-timing through the shared
//! lift vs. re-deriving per net. Byte-identity of the 64 re-timed
//! bodies with the 64 cold bodies is asserted before timing starts.
//! `BENCH_5.json` records the request-rate ratio.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tpn_net::{TimedPetriNet, TimingAssignment};
use tpn_protocols::families::lossy_chain;
use tpn_rational::Rational;
use tpn_service::{RequestKind, Service, ServiceConfig};

const HOPS: usize = 48;
const BATCH: i128 = 64;

fn base_net() -> TimedPetriNet {
    lossy_chain(HOPS, Rational::new(1, 2), Rational::from_int(2)).0
}

/// The 64 hop times both sides analyze: distinct positive integers,
/// hop and drop re-timed together so every point stays in-region.
fn hop_times() -> Vec<i128> {
    (0..BATCH).map(|i| 3 + i).collect()
}

fn perturbation(t: i128) -> TimingAssignment {
    TimingAssignment::new()
        .with("F(hop3)", Rational::from_int(t))
        .with("F(drop3)", Rational::from_int(t))
}

fn whatif_body() -> String {
    let perturbations: Vec<String> = hop_times()
        .iter()
        .map(|t| format!(r#"{{"F(hop3)":"{t}","F(drop3)":"{t}"}}"#))
        .collect();
    format!(
        r#"{{"net":{},"perturbations":[{}]}}"#,
        tpn_service::json::escape(&base_net().to_tpn()),
        perturbations.join(",")
    )
}

/// The 64 perturbed nets as `.tpn` texts (the cold side's inputs).
fn perturbed_texts() -> Vec<String> {
    let net = base_net();
    hop_times()
        .iter()
        .map(|t| net.with_timing(&perturbation(*t)).unwrap().to_tpn())
        .collect()
}

fn bench(c: &mut Criterion) {
    let body = whatif_body();
    let texts = perturbed_texts();

    // Byte-identity gate: every re-timed analysis body must appear
    // verbatim inside the what-if envelope.
    {
        let service = Service::new(ServiceConfig::default());
        let (status, envelope) = service.respond_whatif(&body);
        assert_eq!(status, 200, "{envelope}");
        for text in &texts {
            let cold = Service::new(ServiceConfig::default());
            let (status, cold_body) = cold.respond(RequestKind::Analyze, text);
            assert_eq!(status, 200, "{cold_body}");
            assert!(
                envelope.contains(cold_body.as_str()),
                "re-timed body not byte-identical to the cold body"
            );
        }
    }

    let mut g = c.benchmark_group("whatif_retiming");
    g.throughput(Throughput::Elements(BATCH as u64));

    g.bench_function("whatif_batch_64", |b| {
        b.iter(|| {
            let service = Service::new(ServiceConfig::default());
            let (status, envelope) = service.respond_whatif(black_box(&body));
            assert_eq!(status, 200);
            black_box(envelope);
        });
    });

    g.bench_function("cold_sessions_64", |b| {
        b.iter(|| {
            let service = Service::new(ServiceConfig::default());
            for text in &texts {
                let (status, body) = service.respond(RequestKind::Analyze, black_box(text));
                assert_eq!(status, 200);
                black_box(body);
            }
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
