//! E12 — the artifact tier's warm path: a `/sweep` served by a service
//! that already holds the net's session (and therefore its lifted
//! domain + compiled program) vs. the same sweep against a cold
//! service.
//!
//! Both sides measure the full in-process `/sweep` request path on the
//! paper's Figure-1 net with a 256-point grid over the timeout `E(t3)`.
//! To isolate the *artifact* tier from the *body* tier, every request
//! uses a fresh grid (the `from` endpoint is perturbed per iteration),
//! so the `(digest, spec-hash)` body-cache key never repeats:
//!
//! * `cold` uses a fresh `Service` per iteration — the sweep pays
//!   lift + TRG + decision graph + rates + export + compile + evaluate;
//! * `warm` reuses one `Service` whose session was primed by a single
//!   `/analyze` + first `/sweep` — the per-iteration cost is
//!   spec parse + compile (new shape per spec? no: same axes/targets,
//!   so the *lift* is shared; only the grid evaluation and JSON differ).
//!
//! The warm/cold request-rate ratio is what the session tier buys a
//! deployment where clients iterate on grids over the same net;
//! `BENCH_4.json` records it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tpn_service::{RequestKind, Service, ServiceConfig};

const FIG1: &str = include_str!("../../../tests/fixtures/fig1.tpn");

/// A sweep request body over `E(t3)` whose `from` endpoint varies per
/// iteration — same axes and targets (same lift artifact), distinct
/// spec hash (no body-cache hit).
fn sweep_body(from: u64) -> String {
    format!(
        r#"{{"net":{},"targets":["throughput:t7"],"sweep":[{{"symbol":"E(t3)","from":"{from}","to":"2050","steps":256}}]}}"#,
        tpn_service::json::escape(FIG1)
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("session_warm");
    g.throughput(Throughput::Elements(1));

    // Cold: every iteration pays the whole derivation chain.
    g.bench_function("sweep_cold", |b| {
        let mut i = 300u64;
        b.iter(|| {
            let service = Service::new(ServiceConfig::default());
            i += 1;
            let (status, body) = service.respond_sweep(black_box(&sweep_body(i)));
            assert_eq!(status, 200, "{body}");
            black_box(body);
        });
    });

    // Warm: one service, session primed by /analyze + a first /sweep;
    // each iteration's new grid reuses the memoized lift.
    g.bench_function("sweep_warm_after_analyze", |b| {
        let service = Service::new(ServiceConfig::default());
        let (status, _) = service.respond(RequestKind::Analyze, FIG1);
        assert_eq!(status, 200);
        let (status, _) = service.respond_sweep(&sweep_body(300));
        assert_eq!(status, 200);
        let mut i = 10_000u64;
        b.iter(|| {
            i += 1;
            let (status, body) = service.respond_sweep(black_box(&sweep_body(i)));
            assert_eq!(status, 200, "{body}");
            black_box(body);
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
