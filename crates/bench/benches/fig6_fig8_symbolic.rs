//! E4/E5/E6 — regenerate and benchmark Figures 6, 7 and 8: the
//! *symbolic* reachability graph under constraints (1)–(4), the
//! constraint-resolution audit, and the symbolic decision graph with
//! its traversal-rate expressions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpn_core::{solve_rates, DecisionGraph, Performance};
use tpn_protocols::simple;
use tpn_reach::{build_trg, SymbolicDomain, TrgOptions};

fn print_regenerated() {
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    eprintln!("[fig6] symbolic states = {} (paper: 18)", trg.num_states());
    eprintln!(
        "[fig7] constraint-resolved minima = {} (paper: states 4, 5, 10, 12, 13)",
        trg.min_resolutions().len()
    );
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    eprintln!("[fig8] symbolic throughput:");
    eprintln!("  T = {}", perf.throughput(&dg, proto.t[6]));
}

fn bench(c: &mut Criterion) {
    print_regenerated();
    let (proto, cs) = simple::symbolic();
    let domain = SymbolicDomain::new(&proto.net, cs);
    let opts = TrgOptions::default();

    c.bench_function("fig6/build_symbolic_trg", |b| {
        b.iter(|| build_trg(black_box(&proto.net), &domain, &opts).unwrap())
    });

    let trg = build_trg(&proto.net, &domain, &opts).unwrap();
    c.bench_function("fig8/symbolic_collapse_and_rates", |b| {
        b.iter(|| {
            let dg = DecisionGraph::from_trg(black_box(&trg), &domain).unwrap();
            black_box(solve_rates(&dg, 0).unwrap())
        })
    });

    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates.clone(), &domain).unwrap();
    let expr = perf.throughput(&dg, proto.t[6]);
    let a = simple::paper_assignment();
    c.bench_function("fig8/evaluate_throughput_expression", |b| {
        b.iter(|| black_box(expr.eval(&a).unwrap()))
    });

    // Ablation: the symbolic construction pays for Fourier–Motzkin
    // entailment at every multi-candidate minimum; compare against the
    // numeric construction of the same graph.
    let nproto = simple::paper();
    let ndomain = tpn_reach::NumericDomain::new();
    c.bench_function("ablation/numeric_vs_symbolic_trg (numeric side)", |b| {
        b.iter(|| build_trg(black_box(&nproto.net), &ndomain, &opts).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
