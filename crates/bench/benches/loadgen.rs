//! E13 — serving-tier load test: epoll reactor vs threaded listener.
//!
//! Not a Criterion bench: throughput under high connection counts is a
//! systems measurement, not a microbenchmark, so this binary drives the
//! in-process server with the epoll load generator
//! (`tpn_bench::loadgen`) and reports req/s plus the server-side p99
//! from its own `/metrics` histograms (client-side latency would fold
//! in loadgen scheduling noise; the server histogram brackets exactly
//! the accept-to-flush path both listeners share).
//!
//! Two arms, matched request budgets:
//!
//! - **epoll** — `TPN_LOADGEN_CONNS` (default 10 000) concurrent
//!   keep-alive connections on the reactor listener;
//! - **threaded** — the thread-per-connection listener at
//!   `TPN_LOADGEN_THREADED_CONNS` (default 64) with close-and-redial
//!   clients, which is that design's ceiling: each connection costs a
//!   pool slot for its whole life, so 10k concurrent sockets would
//!   need 10k threads.
//!
//! Quiet-host numbers are recorded in `BENCH_9.json`. CI runs the
//! 512-connection smoke via `tests/aio.rs` instead of this binary.

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tpn_bench::loadgen::{self, LoadConfig, RequestSpec};
use tpn_service::{spawn, IoMode, Service, ServiceConfig};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fetch `/metrics` over one throwaway close-mode connection.
fn fetch_metrics(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("dial /metrics");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
        .expect("send /metrics");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read /metrics");
    let body_at = raw.find("\r\n\r\n").expect("header terminator") + 4;
    raw[body_at..].to_string()
}

/// Server-side request-duration quantile from the Prometheus
/// histogram: first bucket whose cumulative count reaches q of the
/// total. Upper-bound estimate, same as any promql `histogram_quantile`.
fn histogram_quantile(metrics: &str, family: &str, q: f64) -> f64 {
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    let mut total = 0u64;
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix(&format!("{family}_bucket{{")) {
            let le = rest
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .expect("le label");
            let count: u64 = rest
                .rsplit(' ')
                .next()
                .and_then(|s| s.parse().ok())
                .expect("bucket count");
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().expect("bucket bound")
            };
            buckets.push((bound, count));
            total = total.max(count);
        }
    }
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let want = (total as f64 * q).ceil() as u64;
    for (bound, count) in &buckets {
        if *count >= want {
            return *bound;
        }
    }
    f64::INFINITY
}

fn run_arm(name: &str, io: IoMode, conns: usize, requests: u64, keep_alive: bool) {
    let service = Arc::new(Service::new(ServiceConfig {
        io,
        ..ServiceConfig::default()
    }));
    let handle = spawn(Arc::clone(&service), "127.0.0.1:0").expect("spawn server");
    let addr = handle.addr();

    let cfg = LoadConfig {
        connections: conns,
        requests,
        keep_alive,
        // `/slo` is unconditionally 200 (unlike `/healthz`, which
        // flips to 503 when the burn-rate engine fires under load).
        mix: vec![RequestSpec::new("GET", "/slo", "")],
        deadline: Duration::from_secs(300),
    };
    let report = loadgen::run(addr, &cfg).expect("loadgen run");
    let metrics = fetch_metrics(addr);
    let p50 = histogram_quantile(&metrics, "tpn_request_duration_seconds", 0.50);
    let p99 = histogram_quantile(&metrics, "tpn_request_duration_seconds", 0.99);
    println!(
        "{name}: conns={conns} requests={requests} ok={} non_2xx={} errors={} \
         elapsed={:.2}s req_per_sec={:.0} server_p50<={p50}s server_p99<={p99}s",
        report.ok,
        report.non_2xx,
        report.errors,
        report.elapsed.as_secs_f64(),
        report.req_per_sec(),
    );
    handle.shutdown();
}

fn main() {
    // `cargo bench` forwards harness flags like `--bench`; ignore them.
    let conns = env_usize("TPN_LOADGEN_CONNS", 10_000);
    let threaded_conns = env_usize("TPN_LOADGEN_THREADED_CONNS", 64);
    let requests = env_usize("TPN_LOADGEN_REQS", 100_000) as u64;

    if IoMode::epoll_supported() {
        run_arm("epoll", IoMode::Epoll, conns, requests, true);
    } else {
        println!("epoll: skipped (unsupported on this platform/build)");
    }
    run_arm(
        "threaded",
        IoMode::Threaded,
        threaded_conns,
        requests,
        false,
    );
}
