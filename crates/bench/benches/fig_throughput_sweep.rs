//! E7 — regenerate the paper's throughput result and the implied loss
//! sweep, then benchmark the end-to-end expression derivation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpn_core::{solve_rates, DecisionGraph, Performance};
use tpn_protocols::simple;
use tpn_rational::Rational;
use tpn_reach::{build_trg, NumericDomain, TrgOptions};

fn throughput(params: &simple::Params) -> Rational {
    let proto = simple::numeric(params);
    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    perf.throughput(&dg, proto.t[6])
}

fn print_regenerated() {
    let t = throughput(&simple::Params::paper());
    eprintln!(
        "[throughput] paper parameters: T = {} msg/ms = {:.4} msg/s (paper: 18.05/6329.22 ≈ 2.852 msg/s)",
        t,
        t.to_f64() * 1000.0
    );
    eprintln!("[throughput] loss sweep (loss% -> msg/s):");
    for loss in [0i128, 1, 2, 5, 10, 20, 30, 40] {
        let mut p = simple::Params::paper();
        p.packet_loss = Rational::new(loss, 100);
        p.ack_loss = p.packet_loss;
        eprintln!("  {loss:>3}% -> {:.4}", throughput(&p).to_f64() * 1000.0);
    }
}

fn bench(c: &mut Criterion) {
    print_regenerated();
    let params = simple::Params::paper();
    c.bench_function("throughput/numeric_end_to_end", |b| {
        b.iter(|| black_box(throughput(black_box(&params))))
    });

    c.bench_function("throughput/loss_sweep_8_points", |b| {
        b.iter(|| {
            let mut acc = Rational::ZERO;
            for loss in [0i128, 1, 2, 5, 10, 20, 30, 40] {
                let mut p = simple::Params::paper();
                p.packet_loss = Rational::new(loss, 100);
                p.ack_loss = p.packet_loss;
                acc += throughput(&p);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
