//! E13 — parameter synthesis vs exhaustive sweep: how much cheaper is
//! *solving* for the optimal timeout than tabulating and scanning?
//!
//! Three tiers on the paper's Figure-1 protocol with the timeout
//! `E(t3)` lifted (plus a two-parameter variant with the packet time
//! `F(t4)` lifted as well):
//!
//! * `exact_univariate` — the certified Sturm-sequence engine: isolate
//!   the derivative's roots, classify them, compare candidates exactly;
//! * `sweep_argmax_10k` — the exhaustive baseline the certificate
//!   replaces: evaluate the compiled expression at 10 000 grid points
//!   and keep the best (via `tpn_eval::argbest_f64`, so the baseline
//!   already avoids materialising rows);
//! * `grid_gradient_2d` — the multivariate refiner (coarse seed grid +
//!   projected gradient ascent + exact re-verification) on the
//!   two-parameter problem.
//!
//! `BENCH_3.json` records the wall-clock ratio of the exact solve to
//! the 10k sweep scan: synthesis answers the design question both
//! faster *and* with a proof.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tpn_core::{solve_rates, DecisionGraph, ExprTarget, OptGoal, Performance};
use tpn_eval::{argbest_f64, Axis, Compiled, Grid, SweepOptions};
use tpn_net::symbols;
use tpn_opt::{optimize_multivariate, optimize_univariate, OptOptions};
use tpn_protocols::simple;
use tpn_rational::Rational;
use tpn_reach::{build_trg, LiftedDomain, TrgOptions};
use tpn_symbolic::{Assignment, Constraint, RatFn, Symbol};

/// Lift `swept` out of the Figure-1 net and export the t7 throughput.
fn lifted_throughput(swept: &[Symbol]) -> (RatFn, Vec<Constraint>) {
    let proto = simple::paper();
    let domain = LiftedDomain::new(&proto.net, swept).expect("liftable");
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).expect("trg");
    let dg = DecisionGraph::from_trg(&trg, &domain).expect("decision graph");
    let rates = solve_rates(&dg, 0).expect("rates");
    let perf = Performance::new(&dg, rates, &domain).expect("performance");
    let expr = perf.export_expr(&dg, &trg, &domain, ExprTarget::Throughput(proto.t[6]));
    (expr, domain.region_constraints())
}

fn bench_synthesis(c: &mut Criterion) {
    let e3 = symbols::enabling("t3");
    let f4 = symbols::firing("t4");
    let (lo, hi) = (Rational::from_int(300), Rational::from_int(2050));
    let (expr1, region1) = lifted_throughput(&[e3]);

    let mut g = c.benchmark_group("opt/fig1_timeout");
    g.bench_function("exact_univariate", |b| {
        b.iter(|| {
            let best = optimize_univariate(
                black_box(&expr1),
                e3,
                lo,
                hi,
                &region1,
                OptGoal::Maximize,
                Rational::new(1, 1 << 20),
            )
            .unwrap();
            assert!(best.certified());
            black_box(best)
        })
    });
    // The exhaustive baseline: compile once outside the loop (the
    // sweep endpoint amortises compilation through its cache too),
    // then scan 10 000 points per answer.
    let compiled = Compiled::compile(std::slice::from_ref(&expr1));
    let grid = Grid::new(vec![Axis::linear(e3, lo, hi, 10_000)]).expect("grid");
    let fixed = Assignment::new();
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("sweep_argmax_10k", format!("{threads}threads")),
            &threads,
            |b, &threads| {
                let opts = SweepOptions {
                    threads,
                    max_points: 10_000,
                };
                b.iter(|| {
                    argbest_f64(&compiled, &grid, &fixed, &opts, 0, true, |_| true)
                        .unwrap()
                        .expect("defined rows")
                })
            },
        );
    }
    g.finish();

    let (expr2, region2) = lifted_throughput(&[e3, f4]);
    let axes = [
        (e3, lo, hi),
        (f4, Rational::from_int(50), Rational::from_int(200)),
    ];
    let mut g = c.benchmark_group("opt/fig1_timeout_x_packet_time");
    g.bench_function("grid_gradient_2d", |b| {
        let opts = OptOptions::default();
        b.iter(|| {
            optimize_multivariate(black_box(&expr2), &axes, &region2, OptGoal::Maximize, &opts)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
