//! E12 — observability overhead on the warm serving path.
//!
//! The instrumentation contract of the observability layer is that a
//! warm cache hit — the hot path a serving deployment lives on — pays
//! almost nothing for metrics: one trace begin/end, a handful of inert
//! or cheap span guards, two relaxed counter bumps and one histogram
//! record. This bench measures exactly `service_cache`'s `warm_hit`
//! workload twice — once with metrics recording enabled (the default)
//! and once with `ServiceConfig { metrics: false, .. }`, which turns
//! the whole layer into a no-op — on the same two nets.
//!
//! `BENCH_6.json` records the instrumented/no-op mean ratio; the
//! acceptance gate is <3% overhead. Setting `TPN_OBS_GATE=<percent>`
//! additionally runs an interleaved A/B timing loop after the criterion
//! groups and fails the process if the measured overhead exceeds the
//! given percentage — the CI hook (CI uses a lenient bound; the precise
//! number comes from the quiet-host run recorded in BENCH_6.json).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;
use tpn_protocols::families;
use tpn_rational::Rational;
use tpn_service::{RequestKind, Service, ServiceConfig};

const FIG1: &str = include_str!("../../../tests/fixtures/fig1.tpn");

fn service(instrumented: bool) -> Service {
    Service::new(ServiceConfig {
        metrics: instrumented,
        ..ServiceConfig::default()
    })
}

fn bench_one(g: &mut criterion::BenchmarkGroup<'_>, label: &str, src: &str) {
    for (arm, instrumented) in [("instrumented", true), ("noop", false)] {
        g.bench_with_input(BenchmarkId::new(arm, label), &src, |b, src| {
            let service = service(instrumented);
            b.iter(|| {
                let (status, body) = service.respond(RequestKind::Analyze, black_box(src));
                assert_eq!(status, 200, "{body}");
                black_box(body)
            })
        });
    }
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("service/warm_hit_observability");
    g.throughput(Throughput::Elements(1));
    let prodcons =
        families::producer_consumer(32, Rational::from_int(2), Rational::from_int(5)).to_tpn();
    bench_one(&mut g, "producer_consumer_32", &prodcons);
    bench_one(&mut g, "fig1", FIG1);
    g.finish();
}

/// Nanoseconds for one block of `BLOCK` warm-hit requests.
fn block_ns(service: &Service, src: &str) -> f64 {
    const BLOCK: u32 = 8;
    let start = Instant::now();
    for _ in 0..BLOCK {
        let (status, body) = service.respond(RequestKind::Analyze, black_box(src));
        assert_eq!(status, 200, "{body}");
        black_box(body);
    }
    start.elapsed().as_nanos() as f64 / f64::from(BLOCK)
}

/// `TPN_OBS_GATE=<percent>`: paired A/B overhead measurement with a
/// hard failure past the bound, built to survive a noisy shared host.
/// The two services are timed in short 8-request blocks in ABBA order
/// (instrumented, no-op, no-op, no-op-warm…), one per-quad ratio each
/// ~230 µs, so scheduler preemptions and load drift land on whole
/// quads; the verdict is the **median** of ~2000 quad ratios, which a
/// minority of disturbed quads cannot move.
fn overhead_gate() {
    let Ok(bound) = std::env::var("TPN_OBS_GATE") else {
        return;
    };
    let bound: f64 = bound.parse().expect("TPN_OBS_GATE must be a percentage");
    let prodcons =
        families::producer_consumer(32, Rational::from_int(2), Rational::from_int(5)).to_tpn();
    let with = service(true);
    let without = service(false);
    // Warm both caches (and the instrumented trace ring) first.
    for _ in 0..300 {
        black_box(block_ns(&with, &prodcons));
        black_box(block_ns(&without, &prodcons));
    }
    const QUADS: usize = 2_001;
    let mut ratios = Vec::with_capacity(QUADS);
    let mut sum_with = 0.0;
    let mut sum_without = 0.0;
    for _ in 0..QUADS {
        let a1 = block_ns(&with, &prodcons);
        let b1 = block_ns(&without, &prodcons);
        let b2 = block_ns(&without, &prodcons);
        let a2 = block_ns(&with, &prodcons);
        ratios.push((a1 + a2) / (b1 + b2));
        sum_with += a1 + a2;
        sum_without += b1 + b2;
    }
    ratios.sort_by(|x, y| x.total_cmp(y));
    let overhead = (ratios[QUADS / 2] - 1.0) * 100.0;
    println!(
        "obs overhead gate: instrumented {:.0} ns, noop {:.0} ns, median overhead {overhead:.2}% (bound {bound}%)",
        sum_with / (2.0 * QUADS as f64),
        sum_without / (2.0 * QUADS as f64)
    );
    assert!(
        overhead <= bound,
        "observability overhead {overhead:.2}% exceeds the {bound}% gate"
    );
}

criterion_group!(benches, bench_obs_overhead);

fn main() {
    benches();
    overhead_gate();
}
