//! E12 — observability overhead on the warm serving path.
//!
//! The instrumentation contract of the observability layer is that a
//! warm cache hit — the hot path a serving deployment lives on — pays
//! almost nothing for metrics: one trace begin/end, a handful of inert
//! or cheap span guards, two relaxed counter bumps and one histogram
//! record. This bench measures exactly `service_cache`'s `warm_hit`
//! workload twice — once with metrics recording enabled (the default)
//! and once with `ServiceConfig { metrics: false, .. }`, which turns
//! the whole layer into a no-op — on the same two nets.
//!
//! Since PR 8 the instrumented arm carries the full retention layer
//! too: every request passes the slow-request watchdog (the default
//! 250 ms analysis objective — warm hits pay the threshold compare,
//! never a capture), and a live sampler thread pushes retention-ring
//! frames (counter deltas + histogram snapshots + `/proc/self`
//! gauges) every 25 ms — 200× the production 5 s cadence, so the
//! measured interference is a hard upper bound. Since PR 9 each of
//! those sampler ticks also runs the alert evaluator over the default
//! burn-rate rule set (one rule per SLO objective, windowed histogram
//! deltas and all) — `Service::sample_now` is the evaluator's only
//! driver, so the tick inherits it with no bench changes. Both arms
//! get an identical background thread (the no-op arm's `sample_now`
//! is a single branch) so the scheduler load is symmetric.
//!
//! `BENCH_8.json` records the per-request instrumentation delta over
//! the no-op time (see `overhead_gate` for the paired-block method);
//! the acceptance gate is <3% overhead. Setting `TPN_OBS_GATE=<percent>`
//! additionally runs an interleaved A/B timing loop after the criterion
//! groups and fails the process if the measured overhead exceeds the
//! given percentage — the CI hook (CI uses a lenient bound; the precise
//! number comes from the quiet-host run recorded in BENCH_8.json).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpn_protocols::families;
use tpn_rational::Rational;
use tpn_service::{RequestKind, Service, ServiceConfig};

const FIG1: &str = include_str!("../../../tests/fixtures/fig1.tpn");

fn service(instrumented: bool) -> Arc<Service> {
    Arc::new(Service::new(ServiceConfig {
        metrics: instrumented,
        ..ServiceConfig::default()
    }))
}

/// A background retention-sampler thread over one service, ticking
/// far faster than production would; stops and joins on drop.
struct Sampler {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    fn over(service: &Arc<Service>) -> Sampler {
        // Overridable for decomposition runs (how much of the measured
        // overhead is sampler interference vs per-request cost).
        let interval = std::env::var("TPN_OBS_SAMPLER_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(25);
        let stop = Arc::new(AtomicBool::new(false));
        let (service, stopped) = (Arc::clone(service), Arc::clone(&stop));
        let thread = std::thread::spawn(move || {
            let mut next = Instant::now();
            while !stopped.load(Ordering::Relaxed) {
                if Instant::now() >= next {
                    service.sample_now();
                    next += Duration::from_millis(interval);
                }
                std::thread::sleep(Duration::from_millis(5.min(interval)));
            }
        });
        Sampler {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn bench_one(g: &mut criterion::BenchmarkGroup<'_>, label: &str, src: &str) {
    for (arm, instrumented) in [("instrumented", true), ("noop", false)] {
        g.bench_with_input(BenchmarkId::new(arm, label), &src, |b, src| {
            let service = service(instrumented);
            let _sampler = Sampler::over(&service);
            b.iter(|| {
                let (status, body) = service.respond(RequestKind::Analyze, black_box(src));
                assert_eq!(status, 200, "{body}");
                black_box(body)
            })
        });
    }
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("service/warm_hit_observability");
    g.throughput(Throughput::Elements(1));
    let prodcons =
        families::producer_consumer(32, Rational::from_int(2), Rational::from_int(5)).to_tpn();
    bench_one(&mut g, "producer_consumer_32", &prodcons);
    bench_one(&mut g, "fig1", FIG1);
    g.finish();
}

/// Nanoseconds for one block of `BLOCK` warm-hit requests.
fn block_ns(service: &Service, src: &str) -> f64 {
    const BLOCK: u32 = 64;
    let start = Instant::now();
    for _ in 0..BLOCK {
        let (status, body) = service.respond(RequestKind::Analyze, black_box(src));
        assert_eq!(status, 200, "{body}");
        black_box(body);
    }
    start.elapsed().as_nanos() as f64 / f64::from(BLOCK)
}

/// The middle element of a sorted copy of `xs`.
fn median(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|x, y| x.total_cmp(y));
    sorted[sorted.len() / 2]
}

/// `TPN_OBS_GATE=<percent>`: paired A/B overhead measurement with a
/// hard failure past the bound, built to survive a noisy shared host.
/// The two services are timed in 64-request blocks in ABBA order
/// (instrumented, no-op, no-op, instrumented) — long enough that the
/// cache refill from switching services amortizes (8-request blocks
/// over-charged the instrumented arm, whose resident state is
/// bigger), short enough (~400 µs per block) that a scheduler
/// preemption disturbs one quad, not many. Each quad yields one
/// per-request **delta** `(a1+a2-b1-b2)/2`; the verdict is the median
/// delta over the median no-op time. Deltas are additive, so
/// symmetric timing noise cancels in the median — a per-quad *ratio*
/// is right-skewed by noise spikes and read ~0.5-1% high on a busy
/// host.
fn overhead_gate() {
    let Ok(bound) = std::env::var("TPN_OBS_GATE") else {
        return;
    };
    let bound: f64 = bound.parse().expect("TPN_OBS_GATE must be a percentage");
    let prodcons =
        families::producer_consumer(32, Rational::from_int(2), Rational::from_int(5)).to_tpn();
    let with = service(true);
    let without = service(false);
    let _samplers = (Sampler::over(&with), Sampler::over(&without));
    // Warm both caches (and the instrumented trace ring) first.
    for _ in 0..40 {
        black_box(block_ns(&with, &prodcons));
        black_box(block_ns(&without, &prodcons));
    }
    const QUADS: usize = 2_001;
    let mut deltas = Vec::with_capacity(QUADS);
    let mut noops = Vec::with_capacity(QUADS);
    for _ in 0..QUADS {
        let a1 = block_ns(&with, &prodcons);
        let b1 = block_ns(&without, &prodcons);
        let b2 = block_ns(&without, &prodcons);
        let a2 = block_ns(&with, &prodcons);
        deltas.push((a1 + a2 - b1 - b2) / 2.0);
        noops.push((b1 + b2) / 2.0);
    }
    let noop_ns = median(&noops);
    let delta_ns = median(&deltas);
    let overhead = 100.0 * delta_ns / noop_ns;
    println!(
        "obs overhead gate: noop {noop_ns:.0} ns, instrumented +{delta_ns:.1} ns, median overhead {overhead:.2}% (bound {bound}%)",
    );
    assert!(
        overhead <= bound,
        "observability overhead {overhead:.2}% exceeds the {bound}% gate"
    );
}

criterion_group!(benches, bench_obs_overhead);

fn main() {
    benches();
    overhead_gate();
}
