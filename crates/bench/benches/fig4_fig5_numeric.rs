//! E2/E3 — regenerate and benchmark Figures 4 and 5: the numeric timed
//! reachability graph and decision graph of the paper's protocol.
//!
//! On first run the harness prints the regenerated artifacts (state
//! count, decision-graph rows) so the output can be compared against
//! the paper; the Criterion measurements then time each pipeline stage.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpn_core::{solve_rates, DecisionGraph, Performance};
use tpn_protocols::simple;
use tpn_reach::{build_trg, NumericDomain, TrgOptions};

fn print_regenerated() {
    let proto = simple::paper();
    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    eprintln!("[fig4] states = {} (paper: 18)", trg.num_states());
    eprintln!(
        "[fig4] decision nodes = {:?} (paper: states 3, 11)",
        trg.decision_states()
    );
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    eprintln!("[fig5] decision graph:");
    eprint!("{}", dg.describe(&proto.net));
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    eprint!("{}", perf.describe(&proto.net, &dg));
}

fn bench(c: &mut Criterion) {
    print_regenerated();
    let proto = simple::paper();
    let domain = NumericDomain::new();
    let opts = TrgOptions::default();

    c.bench_function("fig4/build_numeric_trg", |b| {
        b.iter(|| build_trg(black_box(&proto.net), &domain, &opts).unwrap())
    });

    let trg = build_trg(&proto.net, &domain, &opts).unwrap();
    c.bench_function("fig5/collapse_decision_graph", |b| {
        b.iter(|| DecisionGraph::from_trg(black_box(&trg), &domain).unwrap())
    });

    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    c.bench_function("fig5/solve_rates", |b| {
        b.iter(|| solve_rates(black_box(&dg), 0).unwrap())
    });

    c.bench_function("fig5/full_pipeline_to_throughput", |b| {
        b.iter(|| {
            let trg = build_trg(&proto.net, &domain, &opts).unwrap();
            let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
            let rates = solve_rates(&dg, 0).unwrap();
            let perf = Performance::new(&dg, rates, &domain).unwrap();
            black_box(perf.throughput(&dg, proto.t[6]))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
