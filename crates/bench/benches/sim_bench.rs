//! E8 — simulator performance: discrete events per second on the
//! paper's protocol and on the alternating-bit extension, plus the
//! convergence-versus-budget trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tpn_protocols::{abp, simple};
use tpn_sim::{simulate, SimOptions};

fn bench(c: &mut Criterion) {
    let proto = simple::paper();
    let a = abp::abp(&simple::Params::paper());

    let mut g = c.benchmark_group("sim/events_per_second");
    for events in [10_000u64, 100_000] {
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(
            BenchmarkId::new("simple_protocol", events),
            &events,
            |b, &events| {
                b.iter(|| {
                    let opts = SimOptions {
                        max_events: events,
                        ..SimOptions::default()
                    };
                    black_box(simulate(&proto.net, &opts).unwrap())
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("abp", events), &events, |b, &events| {
            b.iter(|| {
                let opts = SimOptions {
                    max_events: events,
                    ..SimOptions::default()
                };
                black_box(simulate(&a.net, &opts).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
