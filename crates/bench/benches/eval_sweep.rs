//! E12 — compiled expression evaluation vs exact `RatFn::eval`, and
//! parallel sweep throughput (points/second).
//!
//! Three tiers, measured on the paper's Figure-1 symbolic throughput
//! expression (all 14 timing/frequency symbols free) and on the
//! alternating-bit protocol's delivery throughput (12 attributes
//! lifted):
//!
//! * `ratfn_eval` — the baseline: exact [`tpn_symbolic::RatFn::eval`]
//!   at one point (BTreeMap walk + gcd-reducing rational arithmetic);
//! * `compiled_f64` / `compiled_exact` — the same value through the
//!   `tpn-eval` bytecode backends (scratch reused, no allocation);
//! * `sweep` — the full parallel grid engine, points per second at 1
//!   and 4 threads on a 10 000-point grid of the lifted Figure-1
//!   expression (the `/sweep` serving shape).
//!
//! `BENCH_2.json` records the per-point speedup of `compiled_f64` over
//! `ratfn_eval` — the acceptance bar is ≥ 50×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use tpn_core::{solve_rates, DecisionGraph, ExprTarget, Performance};
use tpn_eval::{sweep_f64, Axis, Compiled, Grid, SweepOptions};
use tpn_net::{symbols, TimedPetriNet, TransId};
use tpn_protocols::{abp, simple};
use tpn_rational::Rational;
use tpn_reach::{build_trg, AnalysisDomain, LiftedDomain, SymbolicDomain, TrgOptions};
use tpn_symbolic::{Assignment, RatFn};

/// Derive one throughput expression through a symbolic-probability
/// domain.
fn throughput_expr<D>(net: &TimedPetriNet, domain: &D, t: TransId) -> RatFn
where
    D: AnalysisDomain<Prob = RatFn>,
{
    let trg = build_trg(net, domain, &TrgOptions::default()).expect("trg");
    let dg = DecisionGraph::from_trg(&trg, domain).expect("decision graph");
    let rates = solve_rates(&dg, 0).expect("rates");
    let perf = Performance::new(&dg, rates, domain).expect("performance");
    perf.export_expr(&dg, &trg, domain, ExprTarget::Throughput(t))
}

struct Case {
    label: &'static str,
    expr: RatFn,
    at: Assignment,
}

fn cases() -> Vec<Case> {
    // Figure 1, fully symbolic (§4): every E/F/f a free symbol.
    let (proto, cs) = simple::symbolic();
    let sdomain = SymbolicDomain::new(&proto.net, cs);
    let fig1 = Case {
        label: "fig1_symbolic",
        expr: throughput_expr(&proto.net, &sdomain, proto.t[6]),
        at: simple::paper_assignment(),
    };
    // Alternating-bit protocol with both timeouts, the four medium
    // loss weights, the four medium transmission times and the two
    // receive/ack handling times lifted — a
    // twelve-symbol expression, the kind a design sweep over the robust
    // protocol asks for.
    let a = abp::abp(&simple::Params::paper());
    let params = simple::Params::paper();
    let lifted = [
        (symbols::enabling("timeout_0"), params.timeout),
        (symbols::enabling("timeout_1"), params.timeout),
        (symbols::frequency("lose_msg_0"), params.packet_loss),
        (symbols::frequency("lose_msg_1"), params.packet_loss),
        (symbols::frequency("lose_ack_0"), params.ack_loss),
        (symbols::frequency("lose_ack_1"), params.ack_loss),
        (symbols::firing("xmit_msg_0"), params.packet_time),
        (symbols::firing("xmit_msg_1"), params.packet_time),
        (symbols::firing("xmit_ack_0"), params.ack_time),
        (symbols::firing("xmit_ack_1"), params.ack_time),
        (symbols::firing("recv_0"), params.ack_handling),
        (symbols::firing("recv_1"), params.ack_handling),
    ];
    let swept: Vec<_> = lifted.iter().map(|(s, _)| *s).collect();
    let ldomain = LiftedDomain::new(&a.net, &swept).expect("liftable");
    let abp_case = Case {
        label: "abp_lifted",
        expr: throughput_expr(&a.net, &ldomain, a.deliveries[0]),
        at: lifted.into_iter().collect(),
    };
    vec![fig1, abp_case]
}

fn bench_per_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval/per_point");
    g.throughput(Throughput::Elements(1));
    for case in cases() {
        g.bench_with_input(
            BenchmarkId::new("ratfn_eval", case.label),
            &case,
            |b, case| b.iter(|| black_box(&case.expr).eval(black_box(&case.at)).unwrap()),
        );
        let compiled = Compiled::compile(std::slice::from_ref(&case.expr));
        let point_f64: Vec<f64> = compiled
            .vars()
            .iter()
            .map(|s| case.at.get(*s).unwrap().to_f64())
            .collect();
        let point_exact: Vec<Rational> = compiled
            .vars()
            .iter()
            .map(|s| *case.at.get(*s).unwrap())
            .collect();
        g.bench_with_input(
            BenchmarkId::new("compiled_f64", case.label),
            &case,
            |b, _| {
                let mut scratch = Vec::new();
                let mut out = vec![None; 1];
                b.iter(|| {
                    compiled.eval_f64(black_box(&point_f64), &mut scratch, &mut out);
                    black_box(out[0]).unwrap()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("compiled_exact", case.label),
            &case,
            |b, _| {
                let mut scratch = Vec::new();
                let mut out = vec![None; 1];
                b.iter(|| {
                    compiled.eval_exact(black_box(&point_exact), &mut scratch, &mut out);
                    black_box(out[0]).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_sweep(c: &mut Criterion) {
    // The serving shape: the Figure-1 net with E(t3) and f(t5) lifted
    // (everything else constant-folded), swept over a 100×100 grid.
    let proto = simple::paper();
    let e3 = symbols::enabling("t3");
    let f5 = symbols::frequency("t5");
    let domain = LiftedDomain::new(&proto.net, &[e3, f5]).expect("liftable");
    let expr = throughput_expr(&proto.net, &domain, proto.t[6]);
    let compiled = Compiled::compile_with_derivatives(std::slice::from_ref(&expr), &[e3, f5]);
    let grid = Grid::new(vec![
        Axis::linear(e3, Rational::from_int(300), Rational::from_int(2000), 100),
        Axis::linear(f5, Rational::new(1, 100), Rational::new(1, 2), 100),
    ])
    .expect("grid");
    let points = grid.num_points();
    let fixed = Assignment::new();
    let mut g = c.benchmark_group("eval/sweep_10000pts");
    g.throughput(Throughput::Elements(points));
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("f64_with_derivs", format!("{threads}threads")),
            &threads,
            |b, &threads| {
                let opts = SweepOptions {
                    threads,
                    max_points: points,
                };
                b.iter(|| {
                    let rows = sweep_f64(&compiled, &grid, &fixed, &opts).unwrap();
                    assert_eq!(rows.len(), points as usize);
                    black_box(rows)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_per_point, bench_sweep);
criterion_main!(benches);
