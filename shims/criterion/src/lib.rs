//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so this crate
//! vendors the API subset the workspace's benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`] with
//! `bench_function` and benchmark groups, [`BenchmarkId`] and
//! [`Throughput`]. Measurement is a single calibrated wall-clock loop
//! (no statistical analysis): each benchmark runs until a time budget
//! (`TPN_BENCH_MS` milliseconds, default 300) or an iteration cap is
//! reached, and the mean ns/iter is reported.
//!
//! Set `TPN_BENCH_JSON=<path>` to append one JSON object per benchmark
//! (id, mean ns, iteration count, optional throughput) to a JSON-lines
//! file — the workspace's checked-in bench baselines are produced this
//! way.

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// The measurement context handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Cargo invokes bench binaries as `<bin> --bench [FILTER]`;
        // treat the first non-flag argument as a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let ms = std::env::var("TPN_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            filter,
            budget: Duration::from_millis(ms),
            json_path: std::env::var("TPN_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Run `f` as the benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), None, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            budget: self.budget,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = if b.iters > 0 {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        } else {
            0.0
        };
        let mut line = format!(
            "{id:<50} time: [{} per iter, {} iters]",
            fmt_ns(mean_ns),
            b.iters
        );
        if let Some(Throughput::Elements(n)) = throughput {
            if mean_ns > 0.0 {
                let eps = n as f64 / (mean_ns * 1e-9);
                line.push_str(&format!("  thrpt: {eps:.0} elem/s"));
            }
        }
        println!("{line}");
        if let Some(path) = &self.json_path {
            let thrpt = match throughput {
                Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
                Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
                None => String::new(),
            };
            let record = format!(
                "{{\"id\":\"{id}\",\"mean_ns\":{mean_ns:.1},\"iters\":{}{thrpt}}}\n",
                b.iters
            );
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut file| file.write_all(record.as_bytes()));
            if let Err(e) = written {
                eprintln!("criterion shim: cannot append to {path}: {e}");
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run `f` as `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        let throughput = self.throughput;
        self.c.run_one(id, throughput, |b| f(b));
        self
    }

    /// Run `f` as `<group>/<id>` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        let throughput = self.throughput;
        self.c.run_one(id, throughput, |b| f(b, input));
        self
    }

    /// Close the group (upstream finalizes reports here; a no-op).
    pub fn finish(self) {}
}

/// Conversion into the display form of a benchmark id.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Per-iteration workload, for throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the measured closure.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, repeating it until the time budget is exhausted
    /// (always at least once).
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1_000_000_000 {
                self.iters = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

/// Bundle benchmark functions into a group runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_at_least_once() {
        let mut b = Bencher {
            budget: Duration::ZERO,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        let mut runs = 0u64;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("trg", 64).into_benchmark_id(), "trg/64");
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
    }
}
