//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so this crate
//! vendors the API subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with [`Strategy::prop_map`],
//! integer-range / tuple / [`collection::vec`] strategies,
//! [`any`]`::<T>()`, the `prop_assert*!` / [`prop_assume!`] macros and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: generation is derived deterministically
//! from the test's name (no persisted failure seeds), and there is no
//! shrinking — a failing case reports its case index and the generated
//! inputs' `Debug` rendering via the assertion message instead.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is falsified.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Deterministic generator driving value production (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// A generator whose stream is determined by `name` (the test
    /// function's name, so every test sees an independent stream).
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { x: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `u128` below `n` (`n > 0`).
    fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        // Plain modulo: the bias is ≤ 2⁻¹²⁸·n, irrelevant for tests.
        wide % n
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128).wrapping_add(rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128)
                    .wrapping_sub(*self.start() as i128)
                    .wrapping_add(1) as u128;
                (*self.start() as i128).wrapping_add(rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, i8, i16, i32, i64, usize);

/// The canonical strategy for `T` — `any::<bool>()`, `any::<u8>()`, …
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A number of elements: either exact or drawn from a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec`s of `element`-generated values with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = (self.size.lo..=self.size.hi).generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Outcome counters for one `proptest!`-generated test run.
#[doc(hidden)]
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut rejected = 0u32;
    for i in 0..config.cases {
        match case(&mut rng, i) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' falsified at case {i}/{}: {msg}",
                    config.cases
                )
            }
        }
    }
    assert!(
        rejected < config.cases,
        "proptest '{name}': every one of the {} cases was rejected by prop_assume!",
        config.cases
    );
}

/// The entry-point macro: wraps `fn name(arg in strategy, …) { body }`
/// items into `#[test]` functions that run the body over generated
/// inputs. Supports a leading `#![proptest_config(…)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            $crate::run_cases(stringify!($name), &config, |rng, _case| {
                let ($($arg,)+) = $crate::Strategy::generate(&strategies, rng);
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Assert a boolean condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left, right, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("ranges_respect_bounds");
        for _ in 0..500 {
            let v = crate::Strategy::generate(&(-5i128..=5), &mut rng);
            assert!((-5..=5).contains(&v));
            let w = crate::Strategy::generate(&(0u32..4), &mut rng);
            assert!(w < 4);
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = crate::TestRng::from_name("vec_sizes_respect_bounds");
        for _ in 0..200 {
            let v = crate::Strategy::generate(&crate::collection::vec(0u32..3, 1..6), &mut rng);
            assert!((1..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(a in 1i128..100, b in 1i128..100) {
            prop_assert!(a + b >= 2);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a - b, a + b);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn mapped_and_tuple_strategies(v in crate::collection::vec((1i128..5, 1i128..5).prop_map(|(n, d)| n * d), 2..7)) {
            prop_assert!(v.iter().all(|&x| (1..25).contains(&x)));
        }

        #[test]
        fn just_and_any(flag in any::<bool>(), k in Just(7usize)) {
            prop_assert_eq!(k, 7);
            let _ = flag;
        }
    }
}
