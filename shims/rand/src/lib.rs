//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-registry access, so this crate
//! vendors the small API subset the workspace uses: a seedable
//! [`StdRng`] and [`RngExt::random_range`] over integer and float
//! ranges. The generator is xoshiro256\*\* seeded via splitmix64 —
//! fully deterministic for a given seed, which is all the simulator
//! requires (reproducible Monte-Carlo runs).

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand`'s `Rng::random_range`.
pub trait RngExt: RngCore {
    /// A uniform sample from `range` (which must be non-empty).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// A range that can produce uniform samples.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        // Lemire's multiply-shift; the tiny modulo bias of the plain
        // widening multiply is irrelevant for simulation workloads.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Common named generators.
pub mod rngs {
    pub use crate::StdRng;
}

/// The workspace's standard generator: xoshiro256\*\*.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // splitmix64 expansion, the canonical xoshiro seeding procedure.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.random_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
