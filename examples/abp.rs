//! The alternating-bit extension (the robustness upgrade the paper
//! mentions): analyse goodput, duplicate rate and timeout rate, and
//! sweep the timeout setting to show the retransmission trade-off.
//!
//! ```sh
//! cargo run --example abp
//! ```

use timed_petri::prelude::*;
use timed_petri::protocols::{abp::abp, simple};

fn main() {
    let params = simple::Params::paper();
    let a = abp(&params);
    let domain = NumericDomain::new();
    let trg = build_trg(&a.net, &domain, &TrgOptions::default()).unwrap();
    println!(
        "alternating-bit protocol: {} places, {} transitions, {} reachable states",
        a.net.num_places(),
        a.net.num_transitions(),
        trg.num_states()
    );
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();

    let goodput = perf.throughput(&dg, a.deliveries[0]) + perf.throughput(&dg, a.deliveries[1]);
    let dup = perf.throughput(&dg, a.duplicates[0]) + perf.throughput(&dg, a.duplicates[1]);
    let tmo = perf.throughput(&dg, a.timeouts[0]) + perf.throughput(&dg, a.timeouts[1]);
    println!("goodput    = {:.4} msg/s", goodput.to_f64() * 1000.0);
    println!("duplicates = {:.4} /s", dup.to_f64() * 1000.0);
    println!("timeouts   = {:.4} /s", tmo.to_f64() * 1000.0);

    println!("\ntimeout sweep (ms) vs goodput (msg/s):");
    println!("timeout   goodput   timeouts/s");
    for timeout in [250i64, 300, 400, 500, 750, 1000, 1500, 2000] {
        let mut p = params.clone();
        p.timeout = Rational::from_int(timeout as i128);
        let a = abp(&p);
        let trg = build_trg(&a.net, &domain, &TrgOptions::default()).unwrap();
        let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
        let rates = solve_rates(&dg, 0).unwrap();
        let perf = Performance::new(&dg, rates, &domain).unwrap();
        let g = perf.throughput(&dg, a.deliveries[0]) + perf.throughput(&dg, a.deliveries[1]);
        let t = perf.throughput(&dg, a.timeouts[0]) + perf.throughput(&dg, a.timeouts[1]);
        println!(
            "{timeout:>7}   {:>7.4}   {:>9.4}",
            g.to_f64() * 1000.0,
            t.to_f64() * 1000.0
        );
    }
    println!("\n(lower timeouts recover faster from loss; the constraint");
    println!(" timeout > round-trip ≈ 226.9 ms bounds the sweep below)");
}
