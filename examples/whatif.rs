//! Incremental what-if re-timing over the paper's Figure-1 protocol:
//! one base session, a batch of timeout perturbations, every analysis
//! answered from one shared symbolic lift.
//!
//! ```sh
//! cargo run --release --example whatif
//! ```
//!
//! The base [`Session`] materialises the timeout lift **once**; each
//! [`Session::retimed`] call substitutes a perturbed timing point into
//! the memoized skeleton — no reachability rebuild, no recompilation —
//! and, because the whole pipeline is exact rational arithmetic, every
//! re-timed body is byte-identical to a cold analysis of the perturbed
//! net. The example asserts both the byte-identity and the reuse (one
//! `Retimed` build per distinct point, zero extra TRG builds), so it
//! doubles as an end-to-end check of the what-if path (CI runs it).

use timed_petri::net::TimingAssignment;
use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use timed_petri::service::run_with_session;

fn main() {
    let proto = simple::paper();
    let base = Session::new(proto.net.clone(), SessionOptions::new());
    let t7 = proto.t[6];

    // Eight timeout candidates around the paper's 1000 ms value.
    let timeouts = [300, 500, 750, 1000, 1250, 1500, 1750, 2000];
    println!("what-if over E(t3) (paper value 1000 ms):");
    for timeout in timeouts {
        let delta = TimingAssignment::new().with("E(t3)", Rational::from_int(timeout));
        let retimed = base
            .retimed(&delta)
            .expect("timeouts above the ACK round trip");
        let dg = retimed.decision_graph().unwrap();
        let th = retimed.performance().unwrap().throughput(&dg, t7);
        println!(
            "  E(t3) = {timeout:>4} ms  →  throughput(t7) ≈ {:.4} msg/s",
            th.to_f64() * 1000.0
        );

        // Byte-identity: the re-timed body equals a cold analysis of
        // the perturbed net, byte for byte.
        let cold = Session::new(
            base.net().with_timing(&delta).unwrap(),
            SessionOptions::new(),
        );
        assert_eq!(
            run_with_session(&retimed, RequestKind::Analyze).unwrap(),
            run_with_session(&cold, RequestKind::Analyze).unwrap(),
            "re-timed and cold bodies diverged at E(t3)={timeout}"
        );
    }

    // A perturbation below the ACK round trip (~240.4 ms) leaves the
    // lift's validity region: rejected as such, not silently wrong.
    let low = TimingAssignment::new().with("E(t3)", Rational::from_int(100));
    match base.retimed(&low) {
        Err(RetimeError::OutOfRegion(m)) => {
            println!("E(t3) = 100 ms rejected: out of region ({m})")
        }
        other => panic!("expected OutOfRegion, got {:?}", other.map(|_| "a session")),
    }

    // The whole point: the shared lift was built once; each in-region
    // perturbation was one substitution through it (a `Retimed` build),
    // and every one after the first found the lift memoized (a hit).
    assert_eq!(base.stage_stats(Stage::Lifted).builds, 1);
    let retimed = base.stage_stats(Stage::Retimed);
    assert_eq!(retimed.builds, timeouts.len() as u64);
    assert!(
        retimed.hits >= timeouts.len() as u64 - 1,
        "every perturbation after the first re-used the lift: {retimed:?}"
    );
    println!(
        "lift built once, {} perturbations substituted through it",
        retimed.builds
    );
}
