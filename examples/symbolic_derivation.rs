//! The paper's contribution, §3–§4: derive the protocol's performance
//! *expressions* symbolically, without knowing any concrete time.
//!
//! ```sh
//! cargo run --example symbolic_derivation
//! ```
//!
//! Times are symbols (`E(t3)`, `F(t4)`, …) constrained by the paper's
//! timing constraints (1)–(4); frequencies are symbols (`f(t4)`, …).
//! The program prints the symbolic reachability graph (Figure 6), the
//! minimum-delay decisions the constraints discharge (Figure 7), the
//! symbolic decision graph with rates (Figure 8), and the closed-form
//! throughput expression — then instantiates it with the Figure-1b
//! values.

use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_net::symbols;

fn main() {
    let (proto, constraints) = simple::symbolic();
    println!("=== timing constraints (paper (1), (3), (4)) ===");
    println!("{constraints}\n");

    let domain = SymbolicDomain::new(&proto.net, constraints);
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default())
        .expect("the paper's constraints are sufficient");
    println!(
        "=== symbolic timed reachability graph (Figure 6): {} states ===",
        trg.num_states()
    );
    println!("{}", trg.describe_states(&proto.net));

    println!("=== constraint-resolved minima (Figure 7) ===");
    for r in trg.min_resolutions() {
        let cands: Vec<String> = r
            .candidates
            .iter()
            .map(|(t, is_rft, x)| {
                let kind = if *is_rft { "RFT" } else { "RET" };
                format!("{kind}({}) = {x}", proto.net.transition(*t).name())
            })
            .collect();
        println!(
            "  state {}: min{{ {} }} -> {}",
            r.state,
            cands.join(", "),
            cands[r.chosen]
        );
    }

    let dg = DecisionGraph::from_trg(&trg, &domain).expect("protocol cycle exists");
    println!("\n=== symbolic decision graph (Figure 8) ===");
    println!("{}", dg.describe(&proto.net));

    let rates = solve_rates(&dg, 0).expect("ergodic cycle");
    let perf = Performance::new(&dg, rates, &domain).expect("non-zero cycle time");
    println!("{}", perf.describe(&proto.net, &dg));

    let t7 = proto.t[6];
    let expr = perf.throughput(&dg, t7);
    println!(
        "=== closed-form throughput (valid for ALL parameters satisfying the constraints) ==="
    );
    println!("T = {expr}\n");

    // Substitute the 5% loss frequencies only: the paper's simplified form.
    let mut freqs = Assignment::new();
    freqs.set(symbols::frequency("t4"), Rational::new(19, 20));
    freqs.set(symbols::frequency("t5"), Rational::new(1, 20));
    freqs.set(symbols::frequency("t8"), Rational::new(19, 20));
    freqs.set(symbols::frequency("t9"), Rational::new(1, 20));
    let simplified = expr.eval_partial(&freqs).unwrap();
    println!("with 5% loss on both media:");
    println!("T = {simplified}\n");

    // Full instantiation with the Figure-1b times.
    let value = expr.eval(&simple::paper_assignment()).unwrap();
    println!(
        "with the Figure-1b times: T = {} msg/ms ≈ {:.4} msg/s",
        value,
        value.to_f64() * 1000.0
    );
}
