//! Quickstart: analyse the paper's protocol end to end, numerically.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the Figure-1 net with the Figure-1b times and opens a
//! [`Session`] over it — the timed reachability graph (Figure 4), the
//! decision graph (Figure 5), the traversal rates and the performance
//! measures are each computed once, on first demand, and shared.

use timed_petri::prelude::*;
use timed_petri::protocols::simple;

fn main() {
    let proto = simple::paper();
    println!("=== net (Figure 1) ===\n{}", proto.net);

    let session = Session::new(proto.net.clone(), SessionOptions::new());
    let net = session.net();

    let trg = session
        .trg()
        .expect("the paper net explores without errors");
    println!(
        "=== timed reachability graph (Figure 4): {} states, {} edges ===",
        trg.num_states(),
        trg.num_edges()
    );
    println!("{}", trg.describe_states(net));

    let dg = session.decision_graph().expect("protocol cycle exists");
    println!("=== decision graph (Figure 5) ===");
    println!("{}", dg.describe(net));

    let perf = session.performance().expect("non-zero cycle time");
    println!("=== rates and weights ===");
    println!("{}", perf.describe(net, &dg));

    let t7 = proto.t[6];
    let throughput = perf.throughput(&dg, t7);
    println!(
        "throughput  = {} msg/ms = {:.4} msg/s",
        throughput,
        throughput.to_f64() * 1000.0
    );
    println!(
        "mean time per acknowledged message = {} ms",
        throughput.recip().to_decimal_string(2)
    );

    // How the sender spends its time:
    let t3 = proto.t[2];
    println!(
        "timeout recoveries per second      = {:.4}",
        perf.throughput(&dg, t3).to_f64() * 1000.0
    );
    let awaiting = proto.p[3];
    println!(
        "P(awaiting ack)                    = {:.4}",
        perf.place_utilization(&dg, &trg, &NumericDomain::new(), awaiting)
            .to_f64()
    );
}
