//! Quickstart: analyse the paper's protocol end to end, numerically.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the Figure-1 net with the Figure-1b times, constructs the
//! timed reachability graph (Figure 4), collapses it to the decision
//! graph (Figure 5), solves the traversal rates and prints throughput
//! and cycle-time figures.

use timed_petri::prelude::*;
use timed_petri::protocols::simple;

fn main() {
    let proto = simple::paper();
    println!("=== net (Figure 1) ===\n{}", proto.net);

    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default())
        .expect("the paper net explores without errors");
    println!(
        "=== timed reachability graph (Figure 4): {} states, {} edges ===",
        trg.num_states(),
        trg.num_edges()
    );
    println!("{}", trg.describe_states(&proto.net));

    let dg = DecisionGraph::from_trg(&trg, &domain).expect("protocol cycle exists");
    println!("=== decision graph (Figure 5) ===");
    println!("{}", dg.describe(&proto.net));

    let rates = solve_rates(&dg, 0).expect("ergodic cycle");
    let perf = Performance::new(&dg, rates, &domain).expect("non-zero cycle time");
    println!("=== rates and weights ===");
    println!("{}", perf.describe(&proto.net, &dg));

    let t7 = proto.t[6];
    let throughput = perf.throughput(&dg, t7);
    println!(
        "throughput  = {} msg/ms = {:.4} msg/s",
        throughput,
        throughput.to_f64() * 1000.0
    );
    println!(
        "mean time per acknowledged message = {} ms",
        throughput.recip().to_decimal_string(2)
    );

    // How the sender spends its time:
    let t3 = proto.t[2];
    println!(
        "timeout recoveries per second      = {:.4}",
        perf.throughput(&dg, t3).to_f64() * 1000.0
    );
    let awaiting = proto.p[3];
    println!(
        "P(awaiting ack)                    = {:.4}",
        perf.place_utilization(&dg, &trg, &domain, awaiting)
            .to_f64()
    );
}
