//! Monte-Carlo validation: run the Figure-1 protocol in the
//! discrete-event simulator and compare against the analytic
//! throughput, sweeping the loss rate.
//!
//! ```sh
//! cargo run --release --example simulate_protocol
//! ```

use timed_petri::prelude::*;
use timed_petri::protocols::simple;

fn analytic(params: &simple::Params) -> (simple::SimpleProtocol, f64) {
    let proto = simple::numeric(params);
    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    let t = perf.throughput(&dg, proto.t[6]).to_f64();
    (proto, t)
}

fn main() {
    println!("loss%   analytic msg/s   simulated msg/s   rel.err");
    for loss_pct in [0i128, 1, 2, 5, 10, 20, 30] {
        let mut params = simple::Params::paper();
        params.packet_loss = Rational::new(loss_pct, 100);
        params.ack_loss = params.packet_loss;
        let (proto, analytic_t) = analytic(&params);
        let stats = simulate(
            &proto.net,
            &SimOptions {
                seed: 1234 + loss_pct as u64,
                max_events: 1_000_000,
                warmup: Rational::from_int(10_000),
                ..SimOptions::default()
            },
        )
        .expect("simulation runs");
        let sim_t = stats.throughput(proto.t[6]);
        let rel = if analytic_t > 0.0 {
            (sim_t - analytic_t).abs() / analytic_t
        } else {
            0.0
        };
        println!(
            "{loss_pct:>4}    {:>12.6}    {:>13.6}    {:>6.3}%",
            analytic_t * 1000.0,
            sim_t * 1000.0,
            rel * 100.0
        );
    }
    println!("\n(sim: 1M events per point, 10 s warm-up, seeded)");
}
