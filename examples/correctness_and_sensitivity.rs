//! Correctness proofs and sensitivity analysis on the same model — the
//! "bridge between correctness and performance" the paper's
//! introduction calls for.
//!
//! ```sh
//! cargo run --example correctness_and_sensitivity
//! ```
//!
//! Structural invariants (P/T-semiflows), reachability-based correctness
//! checks (deadlock freedom, safeness, liveness, reversibility), and a
//! *compiled* sensitivity analysis: the symbolically derived throughput
//! and its partial derivatives are lowered to `tpn-eval` bytecode once,
//! then evaluated — elasticities at the paper's operating point via the
//! exact backend, and a timeout sweep via the `f64` backend.

use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_net::invariant;
use tpn_net::symbols;

fn main() {
    let proto = simple::paper();

    println!("=== structural invariants ===");
    for flow in invariant::p_semiflows(&proto.net) {
        let places: Vec<String> = flow
            .support()
            .into_iter()
            .map(|p| {
                let name = proto.net.place_name(tpn_net::PlaceId::from_index(p));
                let w = flow.weights[p];
                if w == 1 {
                    name.to_string()
                } else {
                    format!("{w}·{name}")
                }
            })
            .collect();
        println!(
            "  P-semiflow: {} = {} (conserved)",
            places.join(" + "),
            invariant::conserved_quantity(&proto.net, &flow)
        );
    }
    for flow in invariant::t_semiflows(&proto.net) {
        let ts: Vec<&str> = invariant::t_semiflow_transitions(&flow)
            .into_iter()
            .map(|t| proto.net.transition(t).name())
            .collect();
        println!("  T-semiflow: {{{}}} reproduces the marking", ts.join(", "));
    }
    println!(
        "  covered by P-semiflows (structurally bounded): {}",
        invariant::covered_by_p_semiflows(&proto.net)
    );

    println!("\n=== reachability-based correctness (paper conclusion) ===");
    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let report = tpn_reach::analyze(&trg, &proto.net);
    print!("{}", report.describe(&proto.net));

    println!("\n=== sensitivity of the symbolic throughput (compiled) ===");
    let (sproto, cs) = simple::symbolic();
    let sdomain = SymbolicDomain::new(&sproto.net, cs);
    let strg = build_trg(&sproto.net, &sdomain, &TrgOptions::default()).unwrap();
    let sdg = DecisionGraph::from_trg(&strg, &sdomain).unwrap();
    let srates = solve_rates(&sdg, 0).unwrap();
    let sperf = Performance::new(&sdg, srates, &sdomain).unwrap();
    let throughput = sperf.export_expr(&sdg, &strg, &sdomain, ExprTarget::Throughput(sproto.t[6]));
    let at = simple::paper_assignment();

    // Compile T and ∂T/∂s for every parameter of interest into one
    // shared program: the derivative outputs reuse the subexpressions
    // of T, so all eight values cost barely more than one evaluation.
    let params = [
        ("E(t3) timeout", symbols::enabling("t3")),
        ("F(t2) send", symbols::firing("t2")),
        ("F(t4) packet xmit", symbols::firing("t4")),
        ("F(t6) recv+ack", symbols::firing("t6")),
        ("F(t8) ack xmit", symbols::firing("t8")),
        ("f(t5) packet-loss weight", symbols::frequency("t5")),
        ("f(t9) ack-loss weight", symbols::frequency("t9")),
    ];
    let wrt: Vec<Symbol> = params.iter().map(|(_, s)| *s).collect();
    let compiled = Compiled::compile_with_derivatives(std::slice::from_ref(&throughput), &wrt);
    println!(
        "compiled {} outputs (T and {} partial derivatives) into {} ops",
        compiled.num_outputs(),
        wrt.len(),
        compiled.num_ops()
    );

    // Exact elasticities at the Figure-1b operating point: the
    // compiled rational backend reproduces RatFn::eval bit for bit.
    let point: Vec<Rational> = compiled
        .vars()
        .iter()
        .map(|s| *at.get(*s).expect("paper assignment binds every symbol"))
        .collect();
    let out = compiled.eval_exact_once(&point);
    let t_value = out[0].expect("throughput defined at the paper point");
    println!(
        "T = {} ≈ {:.6}/ms at the Figure-1b point",
        t_value,
        t_value.to_f64()
    );
    println!("elasticity (s/T)·∂T/∂s at the Figure-1b operating point:");
    let mut rows: Vec<(&str, f64)> = Vec::new();
    for (i, (label, sym)) in params.iter().enumerate() {
        let d = out[1 + i].expect("derivative defined at the paper point");
        let x = at.get(*sym).unwrap();
        let elasticity = x * d / t_value;
        rows.push((label, elasticity.to_f64()));
    }
    rows.sort_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap().reverse());
    for (label, e) in &rows {
        println!("  {label:<26} {e:+.4}");
    }
    println!("\n(negative: increasing the parameter lowers throughput;");
    println!(" the largest-magnitude entries dominate the design)");

    // The same compiled program drives a fast f64 sweep: how does
    // throughput respond as the timeout grows from the round-trip
    // bound toward the paper's 1000 ms and beyond?
    println!("\n=== timeout sweep (compiled f64 backend) ===");
    let e3 = symbols::enabling("t3");
    let grid = Grid::new(vec![Axis::linear(
        e3,
        Rational::from_int(300),
        Rational::from_int(2000),
        9,
    )])
    .unwrap();
    let fixed: Assignment = at
        .iter()
        .filter(|(s, _)| *s != e3)
        .map(|(s, v)| (s, *v))
        .collect();
    let sweep = sweep_f64(&compiled, &grid, &fixed, &SweepOptions::default()).unwrap();
    println!("  E(t3)      T (msg/ms)   elasticity wrt E(t3)");
    let mut coords = Vec::new();
    for (i, row) in sweep.iter().enumerate() {
        grid.point(i as u64, &mut coords);
        let x = coords[0].to_f64();
        let t = row[0].expect("defined");
        let d = row[1].expect("defined");
        println!("  {x:>6.1}   {t:>10.6}   {:+.4}", x * d / t);
    }
    println!("\n(the timeout only hurts once it dwarfs the round trip: its");
    println!(" elasticity grows toward -1 as retransmissions dominate)");
}
