//! Correctness proofs and sensitivity analysis on the same model — the
//! "bridge between correctness and performance" the paper's
//! introduction calls for.
//!
//! ```sh
//! cargo run --example correctness_and_sensitivity
//! ```
//!
//! Structural invariants (P/T-semiflows), reachability-based correctness
//! checks (deadlock freedom, safeness, liveness, reversibility), and the
//! elasticity of the symbolically derived throughput with respect to
//! every protocol parameter.

use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_net::invariant;
use tpn_net::symbols;

fn main() {
    let proto = simple::paper();

    println!("=== structural invariants ===");
    for flow in invariant::p_semiflows(&proto.net) {
        let places: Vec<String> = flow
            .support()
            .into_iter()
            .map(|p| {
                let name = proto.net.place_name(tpn_net::PlaceId::from_index(p));
                let w = flow.weights[p];
                if w == 1 {
                    name.to_string()
                } else {
                    format!("{w}·{name}")
                }
            })
            .collect();
        println!(
            "  P-semiflow: {} = {} (conserved)",
            places.join(" + "),
            invariant::conserved_quantity(&proto.net, &flow)
        );
    }
    for flow in invariant::t_semiflows(&proto.net) {
        let ts: Vec<&str> = invariant::t_semiflow_transitions(&flow)
            .into_iter()
            .map(|t| proto.net.transition(t).name())
            .collect();
        println!("  T-semiflow: {{{}}} reproduces the marking", ts.join(", "));
    }
    println!(
        "  covered by P-semiflows (structurally bounded): {}",
        invariant::covered_by_p_semiflows(&proto.net)
    );

    println!("\n=== reachability-based correctness (paper conclusion) ===");
    let domain = NumericDomain::new();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let report = tpn_reach::analyze(&trg, &proto.net);
    print!("{}", report.describe(&proto.net));

    println!("\n=== sensitivity of the symbolic throughput ===");
    let (sproto, cs) = simple::symbolic();
    let sdomain = SymbolicDomain::new(&sproto.net, cs);
    let strg = build_trg(&sproto.net, &sdomain, &TrgOptions::default()).unwrap();
    let sdg = DecisionGraph::from_trg(&strg, &sdomain).unwrap();
    let srates = solve_rates(&sdg, 0).unwrap();
    let sperf = Performance::new(&sdg, srates, &sdomain).unwrap();
    let throughput = sperf.throughput(&sdg, sproto.t[6]);
    let at = simple::paper_assignment();
    println!("elasticity (s/T)·∂T/∂s at the Figure-1b operating point:");
    let mut rows: Vec<(String, f64)> = Vec::new();
    for (label, sym) in [
        ("E(t3) timeout", symbols::enabling("t3")),
        ("F(t2) send", symbols::firing("t2")),
        ("F(t4) packet xmit", symbols::firing("t4")),
        ("F(t6) recv+ack", symbols::firing("t6")),
        ("F(t8) ack xmit", symbols::firing("t8")),
        ("f(t5) packet-loss weight", symbols::frequency("t5")),
        ("f(t9) ack-loss weight", symbols::frequency("t9")),
    ] {
        let e = throughput.elasticity_at(sym, &at).unwrap();
        rows.push((label.to_string(), e.to_f64()));
    }
    rows.sort_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap().reverse());
    for (label, e) in rows {
        println!("  {label:<26} {e:+.4}");
    }
    println!("\n(negative: increasing the parameter lowers throughput;");
    println!(" the largest-magnitude entries dominate the design)");
}
