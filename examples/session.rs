//! One session, three workloads: analyze + sweep + optimize over the
//! paper's Figure-1 protocol, sharing every pipeline artifact.
//!
//! ```sh
//! cargo run --release --example session
//! ```
//!
//! The derivation chain (net → TRG → decision graph → rates →
//! performance, and for the parametrised workloads → lifted domain →
//! compiled program) is materialised **once** per artifact inside one
//! [`Session`]; the example asserts the reuse through the session's
//! per-stage counters, so it doubles as an end-to-end check of the
//! memoization (CI runs it).

use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_core::ExprTarget;
use tpn_eval::{sweep_f64, Axis, Grid, SweepOptions};
use tpn_net::symbols;
use tpn_symbolic::Assignment;

fn main() {
    let proto = simple::paper();
    let session = Session::new(proto.net.clone(), SessionOptions::new());
    let t7 = proto.t[6];

    // --- analyze: the paper's §4 numbers -------------------------------
    let dg = session.decision_graph().expect("protocol cycle exists");
    let perf = session.performance().expect("non-zero cycle time");
    let throughput = perf.throughput(&dg, t7);
    println!(
        "analyze : {} states, throughput(t7) = {} ≈ {:.4} msg/s",
        session.trg().unwrap().num_states(),
        throughput,
        throughput.to_f64() * 1000.0
    );
    assert_eq!(session.trg().unwrap().num_states(), 18);

    // --- sweep: throughput over the timeout E(t3) ----------------------
    let swept = [symbols::enabling("t3")];
    let target = [ExprTarget::Throughput(t7)];
    let compiled = session
        .compiled(&swept, &target, false)
        .expect("fig1 lifts over E(t3)");
    let grid = Grid::new(vec![Axis::try_linear(
        swept[0],
        Rational::from_int(300),
        Rational::from_int(2050),
        512,
    )
    .unwrap()])
    .unwrap();
    let rows = sweep_f64(
        &compiled.program,
        &grid,
        &Assignment::new(),
        &SweepOptions::default(),
    )
    .expect("grid within limits");
    let best = rows
        .iter()
        .filter_map(|r| r[0])
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "sweep   : {} points over E(t3) ∈ [300, 2050], max throughput ≈ {:.6}",
        rows.len(),
        best
    );

    // --- optimize: the certified best timeout --------------------------
    let lifted = session.lifted(&swept).expect("same artifact as the sweep");
    let axes = [(swept[0], Rational::from_int(300), Rational::from_int(2050))];
    let optimum = optimize(
        &compiled.exprs[0],
        &axes,
        &lifted.domain.region_constraints(),
        OptGoal::Maximize,
        &OptOptions::default(),
    )
    .expect("univariate certified solve");
    println!(
        "optimize: best E(t3) = {} (certified: {}), value ≈ {:.6}",
        optimum.point[0].1,
        optimum.certified(),
        optimum.value_f64
    );
    // The sweep's numeric argmax and the certified optimum agree.
    assert!((optimum.value_f64 - best).abs() <= 1e-6 * best.abs());

    // --- the whole point: every artifact was built exactly once --------
    for stage in [
        Stage::Trg,
        Stage::DecisionGraph,
        Stage::Rates,
        Stage::Performance,
        Stage::Lifted,
        Stage::Compiled,
    ] {
        let snap = session.stage_stats(stage);
        assert_eq!(snap.builds, 1, "{stage:?} built more than once: {snap:?}");
    }
    let lifted_stats = session.stage_stats(Stage::Lifted);
    assert!(
        lifted_stats.hits >= 1,
        "the optimize leg re-used the sweep's lift: {lifted_stats:?}"
    );
    println!("artifact reuse verified: every stage built exactly once");
}
