//! Range-of-delays analysis — the paper's stated future work ("nets
//! which allow ranges of firing times"), prototyped by the
//! `IntervalDomain`.
//!
//! ```sh
//! cargo run --example jitter
//! ```
//!
//! We tighten the Figure-1 protocol's timeout to 250 ms (still above the
//! 226.9 ms round trip) and widen the packet transmission time to a
//! jitter band `106.7 ± j`. While the band stays clear of the residual
//! timeout, the 18-state graph survives with interval-valued delays;
//! once the jitter accumulated along the round trip can reach the
//! timeout (at `j = 23.1 ms` the residual `[129.8 − j, 129.8 + j]`
//! touches the ACK transmission time 106.7), the analysis reports the
//! ambiguous pair instead of guessing — the interval analogue of the
//! paper's "insufficient timing constraints".

use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_reach::{Interval, IntervalDomain};

fn main() {
    let mut params = simple::Params::paper();
    params.timeout = Rational::from_int(250);
    assert!(params.satisfies_timeout_constraint());
    let proto = simple::numeric(&params);
    let t4 = proto.t[3];
    let nominal = params.packet_time; // 106.7

    println!("timeout = 250 ms; packet time = 106.7 ± j ms");
    println!("jitter j    outcome");
    for (jn, jd) in [
        (0i128, 1i128),
        (5, 1),
        (10, 1),
        (20, 1),
        (23, 1),
        (231, 10),
        (24, 1),
        (40, 1),
    ] {
        let j = Rational::new(jn, jd);
        let mut dom = IntervalDomain::from_net(&proto.net).expect("fully timed net");
        dom.set_firing(t4, Interval::new(nominal - j, nominal + j));
        match build_trg(&proto.net, &dom, &TrgOptions::default()) {
            Ok(trg) => {
                let dg = DecisionGraph::from_trg(&trg, &dom).expect("cycle");
                let delays: Vec<String> = dg.edges().iter().map(|e| e.delay.to_string()).collect();
                println!(
                    "{:>7}     {} states; decision-edge delays: {}",
                    j.to_decimal_string(1),
                    trg.num_states(),
                    delays.join("  ")
                );
            }
            Err(tpn_reach::ReachError::AmbiguousComparison { left, right, state }) => {
                println!(
                    "{:>7}     ambiguous in state {state}: cannot order {left} vs {right}",
                    j.to_decimal_string(1)
                );
            }
            Err(e) => println!("{:>7}     error: {e}", j.to_decimal_string(1)),
        }
    }
    println!();
    println!("Up to the threshold the analysis yields guaranteed delay *ranges*;");
    println!("beyond it, the model needs a longer timeout (a tighter constraint),");
    println!("exactly as the paper prescribes for the symbolic case.");
}
