//! Parameter synthesis on the paper's protocol: *which timeout
//! maximises throughput?* — answered with an exact certificate.
//!
//! ```sh
//! cargo run --example optimize_timeout
//! ```
//!
//! The timeout `E(t3)` is lifted to a symbol, the acknowledged-message
//! throughput is exported as a closed form valid on the recorded
//! region, and `tpn-opt`'s exact univariate engine finds the optimum
//! over `[300, 2050]` ms with a Sturm-certified derivative-sign
//! certificate. A 10 000-point compiled sweep then confirms the answer
//! the slow way, and the `f64` refiner (the multivariate engine run on
//! the same one-dimensional problem) agrees within float tolerance.

use timed_petri::opt::{optimize_multivariate, optimize_univariate};
use timed_petri::prelude::*;
use timed_petri::protocols::simple;
use tpn_net::symbols;

fn main() {
    let proto = simple::paper();
    let e3 = symbols::enabling("t3");

    // Lift the timeout, derive the throughput closed form and the
    // validity region of the frozen comparisons.
    let domain = LiftedDomain::new(&proto.net, &[e3]).unwrap();
    let trg = build_trg(&proto.net, &domain, &TrgOptions::default()).unwrap();
    let dg = DecisionGraph::from_trg(&trg, &domain).unwrap();
    let rates = solve_rates(&dg, 0).unwrap();
    let perf = Performance::new(&dg, rates, &domain).unwrap();
    let t7 = proto.t[6]; // sender receives the ACK
    let throughput = perf.export_expr(&dg, &trg, &domain, ExprTarget::Throughput(t7));
    let region = domain.region_constraints();

    println!("objective  T(E(t3)) = {throughput}");
    println!("region     {:?}", domain.region());

    // Exact synthesis: certified optimum over the timeout box.
    let (lo, hi) = (Rational::from_int(300), Rational::from_int(2050));
    let best = optimize_univariate(
        &throughput,
        e3,
        lo,
        hi,
        &region,
        OptGoal::Maximize,
        Rational::new(1, 1 << 20),
    )
    .unwrap();
    let x_opt = best.point[0].1;
    let value = best.value.expect("exact value");
    println!("\n=== certified optimum ===");
    println!("  E(t3)* = {x_opt} ms");
    println!("  T*     = {value} ≈ {:.6} msgs/ms", best.value_f64);
    println!("  certificate: {:?}", best.certificate);
    assert!(best.certified(), "the univariate engine proves its answer");

    // The slow way: a 10 000-point compiled sweep must agree.
    let compiled = Compiled::compile(std::slice::from_ref(&throughput));
    let grid = Grid::new(vec![Axis::linear(e3, lo, hi, 10_000)]).unwrap();
    let opts = SweepOptions {
        threads: 4,
        max_points: 10_000,
    };
    let seed = argbest_f64(&compiled, &grid, &Assignment::new(), &opts, 0, true, |_| {
        true
    })
    .unwrap()
    .expect("grid has defined rows");
    let mut coords = Vec::new();
    grid.point(seed.0, &mut coords);
    println!("\n=== 10 000-point sweep argmax (cross-check) ===");
    println!("  E(t3) = {} → T ≈ {:.6}", coords[0], seed.1);
    let cell = (hi - lo) / Rational::from_int(9_999);
    let gap = if coords[0] > x_opt {
        coords[0] - x_opt
    } else {
        x_opt - coords[0]
    };
    assert!(
        gap <= cell,
        "sweep argmax within one grid cell of the proof"
    );

    // And the f64 refiner lands on the same answer without the proof.
    let refined = optimize_multivariate(
        &throughput,
        &[(e3, lo, hi)],
        &region,
        OptGoal::Maximize,
        &OptOptions::default(),
    )
    .unwrap();
    println!("\n=== f64 refiner (no certificate) ===");
    println!(
        "  E(t3) = {} → T ≈ {:.6}",
        refined.point[0].1, refined.value_f64
    );
    assert!((refined.value_f64 - best.value_f64).abs() <= 1e-9 * best.value_f64);
    println!("\nexact engine, sweep and refiner agree.");
}
