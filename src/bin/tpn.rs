//! `tpn` — command-line driver for Timed Petri Net analysis.
//!
//! ```text
//! tpn show <net.tpn>                    print the parsed net and statistics
//! tpn dot <net.tpn>                     Graphviz rendering of the net
//! tpn graph <net.tpn>                   timed reachability graph (state table + dot)
//! tpn analyze <net.tpn> [TRANSITION..]  decision graph, rates, throughputs
//! tpn correctness <net.tpn>             deadlock/safeness/liveness report
//! tpn invariants <net.tpn>              P- and T-semiflows
//! tpn simulate <net.tpn> [EVENTS [SEED]]  Monte-Carlo run
//! tpn sweep <net.tpn> <spec.json>       compiled parameter sweep (JSON rows)
//! tpn optimize <net.tpn> <spec.json>    certified optimal timing parameters (JSON)
//! tpn whatif <net.tpn> <spec.json>      incremental re-timed analyses over a perturbation batch (JSON)
//! tpn serve <addr> [OPTIONS]            HTTP analysis daemon (JSON API)
//! tpn stats <addr> [--metrics] [--watch N]  counters of a running daemon (pretty table or raw /metrics)
//! tpn top <addr> [--interval N]         live dashboard: req/s, latency, burn rates, RSS
//! tpn alerts <addr> [--watch N]         alert rule states, transition history and silences
//! tpn batch <dir> [KIND..]              run analyses over every .tpn in a directory (JSON lines)
//! ```
//!
//! Every analysis subcommand derives through a
//! [`Session`]: the net is parsed once and the
//! pipeline artifacts (TRG, decision graph, rates, lifted domains) are
//! computed once and shared — `tpn batch` with several KINDs walks the
//! chain a single time per file.
//!
//! `tpn --help` prints the command table, `tpn help <command>` (or
//! `tpn <command> --help`) the per-command usage. Nets use the `.tpn`
//! text format documented in `tpn-net` (see the README for an
//! example). All analysis commands require fully timed nets; symbolic
//! analysis is a library-level feature (constraint sets have no text
//! syntax yet).

use std::process::ExitCode;
use std::sync::Arc;

use timed_petri::prelude::*;
use tpn_net::invariant;
use tpn_service::{
    json, RequestKind, Service, ServiceConfig, DEFAULT_SIM_EVENTS, DEFAULT_SIM_SEED,
};

/// One subcommand's name, usage line and summary.
struct CommandHelp {
    name: &'static str,
    usage: &'static str,
    summary: &'static str,
}

const COMMANDS: &[CommandHelp] = &[
    CommandHelp {
        name: "show",
        usage: "tpn show <net.tpn>",
        summary: "print the parsed net and its structural statistics",
    },
    CommandHelp {
        name: "dot",
        usage: "tpn dot <net.tpn>",
        summary: "Graphviz rendering of the net",
    },
    CommandHelp {
        name: "graph",
        usage: "tpn graph <net.tpn>",
        summary: "timed reachability graph (state table + dot)",
    },
    CommandHelp {
        name: "analyze",
        usage: "tpn analyze <net.tpn> [TRANSITION..]",
        summary: "decision graph, traversal rates and throughputs (optionally only the named transitions)",
    },
    CommandHelp {
        name: "correctness",
        usage: "tpn correctness <net.tpn>",
        summary: "deadlock/safeness/liveness/reversibility report",
    },
    CommandHelp {
        name: "invariants",
        usage: "tpn invariants <net.tpn>",
        summary: "P- and T-semiflows of the net",
    },
    CommandHelp {
        name: "simulate",
        usage: "tpn simulate <net.tpn> [EVENTS [SEED]]",
        summary: "Monte-Carlo run (defaults: 1000000 events, seed 0x5EED)",
    },
    CommandHelp {
        name: "sweep",
        usage: "tpn sweep <net.tpn> <spec.json> [--threads N] [--max-points N]",
        summary: "compiled parameter sweep over a grid of timing/frequency values (JSON rows)",
    },
    CommandHelp {
        name: "optimize",
        usage: "tpn optimize <net.tpn> <spec.json> [--threads N] [--max-seed-points N]",
        summary: "find the parameter point of a box that optimises a performance measure (certified where exact)",
    },
    CommandHelp {
        name: "whatif",
        usage: "tpn whatif <net.tpn> <spec.json>",
        summary: "re-time the memoized pipeline over a batch of timing perturbations — no \
                  reachability rebuild, bodies byte-identical to cold analyses (JSON)",
    },
    CommandHelp {
        name: "serve",
        usage: "tpn serve <addr> [--io epoll|threaded] [--threads N] [--queue N] \
                [--cache-bytes N] [--no-metrics] [--log[=FILE]] [--log-sample N] [--slo FILE] \
                [--alerts FILE] [--sample-interval MS] [--max-conns N] [--max-requests N] \
                [--read-timeout MS] [--write-timeout MS] [--idle-timeout MS] [--inflight N] \
                [--stream-threshold BYTES] [--drain-ms MS]",
        summary: "HTTP analysis daemon with a content-addressed result cache; serves through \
                  the epoll reactor (keep-alive, backpressure, streaming) where supported, \
                  the thread-per-connection listener with --io threaded",
    },
    CommandHelp {
        name: "stats",
        usage: "tpn stats <addr> [--metrics] [--watch SECS] [--ticks N]",
        summary: "fetch a running daemon's counters — pretty table from /stats, or the raw \
                  Prometheus exposition with --metrics; --watch redraws every SECS seconds",
    },
    CommandHelp {
        name: "top",
        usage: "tpn top <addr> [--interval SECS] [--window SECS] [--ticks N]",
        summary: "live terminal dashboard of a running daemon — req/s, latency quantiles, \
                  cache hit ratio, SLO burn rates and RSS from /metrics/history and /slo",
    },
    CommandHelp {
        name: "alerts",
        usage: "tpn alerts <addr> [--watch SECS] [--ticks N]",
        summary: "alert rule states of a running daemon — severity, state, value vs threshold, \
                  recent firing/resolved transitions and active silences from /alerts",
    },
    CommandHelp {
        name: "batch",
        usage: "tpn batch <dir> [KIND..]",
        summary: "run analyses over every .tpn file in a directory (parsed once, one session per \
                  file), one JSON line per file and kind",
    },
];

/// The analysis kinds `tpn batch` accepts. One table drives both the
/// usage line and the argument parser, so the help text cannot drift
/// from what actually parses.
const BATCH_KINDS: &[(&str, RequestKind)] = &[
    ("analyze", RequestKind::Analyze),
    ("graph", RequestKind::Graph),
    ("correctness", RequestKind::Correctness),
    ("invariants", RequestKind::Invariants),
    (
        "simulate",
        RequestKind::Simulate {
            events: DEFAULT_SIM_EVENTS,
            seed: DEFAULT_SIM_SEED,
        },
    ),
];

fn batch_kind_list() -> String {
    let names: Vec<&str> = BATCH_KINDS.iter().map(|(n, _)| *n).collect();
    names.join("|")
}

fn command_help(name: &str) -> Option<&'static CommandHelp> {
    COMMANDS.iter().find(|c| c.name == name)
}

fn usage_of(name: &str) -> String {
    let c = command_help(name).expect("known command");
    if name == "batch" {
        format!(
            "usage: {}  (KIND: {})\n  {}",
            c.usage,
            batch_kind_list(),
            c.summary
        )
    } else {
        format!("usage: {}\n  {}", c.usage, c.summary)
    }
}

fn global_usage() -> String {
    let mut out = String::from(
        "usage: tpn <COMMAND> [ARGS]\n       tpn help [COMMAND] | tpn --version\n\ncommands:\n",
    );
    for c in COMMANDS {
        out.push_str(&format!("  {:<12} {}\n", c.name, c.summary));
    }
    out.push_str("\nNets use the line-oriented .tpn format (see the README).");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tpn: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<TimedPetriNet, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    tpn_net::parse_tpn(&src).map_err(|e| e.to_string())
}

/// A one-shot default-options session over a loaded net — every
/// analysis subcommand derives its artifacts through this.
fn session_over(net: TimedPetriNet) -> Session {
    Session::new(net, SessionOptions::new())
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = match args.first() {
        Some(c) => c.as_str(),
        None => return Err(global_usage()),
    };
    match cmd {
        "--version" | "-V" | "version" => {
            println!("tpn {}", env!("CARGO_PKG_VERSION"));
            return Ok(());
        }
        "--help" | "-h" | "help" => {
            match args.get(1) {
                Some(name) => match command_help(name) {
                    Some(_) => println!("{}", usage_of(name)),
                    None => return Err(format!("unknown command {name:?}\n{}", global_usage())),
                },
                None => println!("{}", global_usage()),
            }
            return Ok(());
        }
        _ => {}
    }
    if command_help(cmd).is_none() {
        return Err(format!("unknown command {cmd:?}\n{}", global_usage()));
    }
    // `tpn <command> --help` prints that command's usage.
    if args[1..].iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage_of(cmd));
        return Ok(());
    }
    match cmd {
        "serve" => return cmd_serve(&args[1..]),
        "stats" => return cmd_stats(&args[1..]),
        "top" => return cmd_top(&args[1..]),
        "alerts" => return cmd_alerts(&args[1..]),
        "batch" => return cmd_batch(&args[1..]),
        "sweep" => return cmd_sweep(&args[1..]),
        "optimize" => return cmd_optimize(&args[1..]),
        "whatif" => return cmd_whatif(&args[1..]),
        _ => {}
    }
    let path = args.get(1).ok_or_else(|| usage_of(cmd))?;
    let net = load(path)?;
    match cmd {
        "show" => {
            print!("{net}");
            let s = net.stats();
            println!(
                "\n{} places, {} transitions, {} arcs, {} conflict sets ({} non-trivial), {} initial tokens",
                s.places, s.transitions, s.arcs, s.conflict_sets, s.nontrivial_conflict_sets, s.initial_tokens
            );
            println!("digest {}", net.digest());
            Ok(())
        }
        "dot" => {
            print!("{}", tpn_net::to_dot(&net));
            Ok(())
        }
        "graph" => {
            let session = session_over(net);
            let trg = session.trg().map_err(|e| e.to_string())?;
            let net = session.net();
            println!(
                "{} states, {} edges, {} decision states, {} terminal states\n",
                trg.num_states(),
                trg.num_edges(),
                trg.decision_states().len(),
                trg.terminal_states().len()
            );
            print!("{}", trg.describe_states(net));
            println!("\n{}", trg.to_dot(net));
            Ok(())
        }
        "analyze" => {
            let session = session_over(net);
            let dg = session.decision_graph().map_err(|e| e.to_string())?;
            let perf = session.performance().map_err(|e| e.to_string())?;
            let net = session.net();
            println!("decision graph:");
            print!("{}", dg.describe(net));
            println!("\nrates and weights (reference edge 0):");
            print!("{}", perf.describe(net, &dg));
            println!("\nthroughput (firings per time unit):");
            let selected: Vec<String> = args[2..].to_vec();
            for t in net.transitions() {
                let name = net.transition(t).name();
                if !selected.is_empty() && !selected.iter().any(|s| s == name) {
                    continue;
                }
                let th = perf.throughput(&dg, t);
                println!("  {name:<16} {th}  ≈ {:.6}", th.to_f64());
            }
            Ok(())
        }
        "correctness" => {
            let session = session_over(net);
            let trg = session.trg().map_err(|e| e.to_string())?;
            let net = session.net();
            let report = tpn_reach::analyze(&trg, net);
            print!("{}", report.describe(net));
            if report.is_correct() {
                println!("verdict: correct (deadlock-free, 1-safe, live, reversible)");
            } else {
                println!("verdict: NOT correct");
            }
            Ok(())
        }
        "invariants" => {
            println!("P-semiflows (conserved token sums):");
            for f in invariant::p_semiflows(&net) {
                let parts: Vec<String> = f
                    .support()
                    .into_iter()
                    .map(|p| {
                        let name = net.place_name(tpn_net::PlaceId::from_index(p));
                        let w = f.weights[p];
                        if w == 1 {
                            name.to_string()
                        } else {
                            format!("{w}·{name}")
                        }
                    })
                    .collect();
                println!(
                    "  {} = {}",
                    parts.join(" + "),
                    invariant::conserved_quantity(&net, &f)
                );
            }
            println!("T-semiflows (marking-reproducing firing counts):");
            for f in invariant::t_semiflows(&net) {
                let parts: Vec<String> = f
                    .support()
                    .into_iter()
                    .map(|t| {
                        let name = net.transition(tpn_net::TransId::from_index(t)).name();
                        let w = f.weights[t];
                        if w == 1 {
                            name.to_string()
                        } else {
                            format!("{w}·{name}")
                        }
                    })
                    .collect();
                println!("  {{{}}}", parts.join(", "));
            }
            println!(
                "covered by P-semiflows (structurally bounded): {}",
                invariant::covered_by_p_semiflows(&net)
            );
            Ok(())
        }
        "simulate" => {
            let events: u64 = args
                .get(2)
                .map(|s| s.parse().map_err(|_| format!("bad event count {s:?}")))
                .transpose()?
                .unwrap_or(DEFAULT_SIM_EVENTS);
            let seed: u64 = args
                .get(3)
                .map(|s| s.parse().map_err(|_| format!("bad seed {s:?}")))
                .transpose()?
                .unwrap_or(DEFAULT_SIM_SEED);
            let stats = simulate(
                &net,
                &SimOptions {
                    seed,
                    max_events: events,
                    ..SimOptions::default()
                },
            )
            .map_err(|e| e.to_string())?;
            print!("{}", stats.describe(&net));
            Ok(())
        }
        // Reached only if COMMANDS gains an entry without a match arm:
        // degrade to the error path rather than panicking.
        other => Err(format!("unknown command {other:?}\n{}", global_usage())),
    }
}

/// `tpn sweep <net.tpn> <spec.json> [--threads N] [--max-points N]` —
/// evaluate the compiled performance expressions of a net over a
/// parameter grid. Prints exactly the JSON document the daemon's
/// `POST /sweep` endpoint returns for the same net and spec
/// (byte-identical: both go through `tpn_service::sweep_json`).
fn cmd_sweep(args: &[String]) -> Result<(), String> {
    run_spec_command(args, "sweep", "--max-points", |session, doc| {
        let spec = tpn_service::SweepSpec::from_json(doc).map_err(|e| e.to_string())?;
        let (body, _) = tpn_service::sweep_json(session, &spec).map_err(|e| e.to_string())?;
        Ok(body)
    })
}

/// `tpn optimize <net.tpn> <spec.json> [--threads N] [--max-seed-points N]`
/// — find the parameter point of a box ∩ validity-region that
/// optimises a performance measure. Prints exactly the JSON document
/// the daemon's `POST /optimize` endpoint returns for the same net and
/// spec (byte-identical: both go through `tpn_service::optimize_json`).
fn cmd_optimize(args: &[String]) -> Result<(), String> {
    run_spec_command(args, "optimize", "--max-seed-points", |session, doc| {
        let spec = tpn_service::OptimizeSpec::from_json(doc).map_err(|e| e.to_string())?;
        let (body, _) = tpn_service::optimize_json(session, &spec).map_err(|e| e.to_string())?;
        Ok(body)
    })
}

/// Shared scaffolding of the spec-driven subcommands (`sweep`,
/// `optimize`): parse `<net.tpn> <spec.json>` plus `--threads` and one
/// command-specific budget flag (both defaulting to the server's sweep
/// configuration), load the net into a session configured with them,
/// reject an in-spec `"net"` member, and print the JSON document
/// `produce` renders — the same bytes the matching HTTP endpoint
/// serves (both derive through a session).
fn run_spec_command(
    args: &[String],
    cmd: &str,
    budget_flag: &str,
    produce: impl FnOnce(&Session, &tpn_service::Json) -> Result<String, String>,
) -> Result<(), String> {
    let defaults = ServiceConfig::default();
    let mut threads = defaults.sweep_threads;
    let mut budget = defaults.max_sweep_points;
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<u64, String> {
            let v = it
                .next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage_of(cmd)))?;
            v.parse()
                .map_err(|_| format!("bad {name} value {v:?}\n{}", usage_of(cmd)))
        };
        match arg.as_str() {
            "--threads" => threads = flag_value("--threads")? as usize,
            flag if flag == budget_flag => budget = flag_value(budget_flag)?,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}\n{}", usage_of(cmd)))
            }
            a => positional.push(a),
        }
    }
    let [net_path, spec_path] = positional.as_slice() else {
        return Err(usage_of(cmd));
    };
    let net = load(net_path)?;
    let spec_text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let doc = tpn_service::Json::parse(&spec_text).map_err(|e| format!("{spec_path}: {e}"))?;
    if doc.get("net").is_some() {
        return Err(format!(
            "{spec_path}: the net comes from the <net.tpn> argument; drop the \"net\" member"
        ));
    }
    let session = Session::new(
        net,
        SessionOptions::new().threads(threads).max_points(budget),
    );
    let body = produce(&session, &doc)?;
    println!("{body}");
    Ok(())
}

/// `tpn whatif <net.tpn> <spec.json>` — run a batch of timing
/// perturbations against one net's memoized pipeline, answering every
/// perturbation from one shared symbolic lift. Prints exactly the JSON
/// document the daemon's `POST /whatif` endpoint returns for the same
/// net and spec (byte-identical: both assemble through the same
/// in-process [`Service`]).
fn cmd_whatif(args: &[String]) -> Result<(), String> {
    if let Some(flag) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("unknown flag {flag:?}\n{}", usage_of("whatif")));
    }
    let [net_path, spec_path] = args else {
        return Err(usage_of("whatif"));
    };
    let net = load(net_path)?;
    let spec_text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let doc = tpn_service::Json::parse(&spec_text).map_err(|e| format!("{spec_path}: {e}"))?;
    if doc.get("net").is_some() {
        return Err(format!(
            "{spec_path}: the net comes from the <net.tpn> argument; drop the \"net\" member"
        ));
    }
    let spec = tpn_service::WhatifSpec::from_json(&doc).map_err(|e| e.to_string())?;
    let service = Service::new(ServiceConfig::default());
    let body = service.respond_whatif_spec(net, &spec);
    println!("{body}");
    Ok(())
}

/// `tpn serve <addr> [--threads N] [--queue N] [--cache-bytes N]
/// [--no-metrics] [--log[=FILE]] [--log-sample N]`
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut addr: Option<&str> = None;
    let mut config = ServiceConfig {
        // The daemon defaults to the best listener for the platform;
        // the library default stays Threaded for embedders and tests.
        io: tpn_service::IoMode::platform_default(),
        ..ServiceConfig::default()
    };
    let mut log_requested = false;
    let mut log_path: Option<String> = None;
    let mut log_sample: u64 = 1;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<usize, String> {
            let v = it
                .next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage_of("serve")))?;
            v.parse()
                .map_err(|_| format!("bad {name} value {v:?}\n{}", usage_of("serve")))
        };
        match arg.as_str() {
            "--threads" => config.threads = flag_value("--threads")?,
            "--queue" => config.queue_cap = flag_value("--queue")?,
            "--io" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--io needs a value\n{}", usage_of("serve")))?;
                config.io = match v.as_str() {
                    "epoll" => {
                        if !tpn_service::IoMode::epoll_supported() {
                            return Err(
                                "--io epoll is unsupported on this platform/build".to_string()
                            );
                        }
                        tpn_service::IoMode::Epoll
                    }
                    "threaded" => tpn_service::IoMode::Threaded,
                    other => {
                        return Err(format!(
                            "bad --io value {other:?} (epoll or threaded)\n{}",
                            usage_of("serve")
                        ))
                    }
                };
            }
            "--max-conns" => config.aio.max_connections = flag_value("--max-conns")?,
            "--max-requests" => {
                config.aio.max_requests_per_conn = flag_value("--max-requests")? as u64
            }
            "--read-timeout" => config.aio.read_deadline_ms = flag_value("--read-timeout")? as u64,
            "--write-timeout" => {
                config.aio.write_deadline_ms = flag_value("--write-timeout")? as u64
            }
            "--idle-timeout" => config.aio.idle_deadline_ms = flag_value("--idle-timeout")? as u64,
            "--inflight" => config.aio.inflight = flag_value("--inflight")?,
            "--stream-threshold" => config.aio.stream_threshold = flag_value("--stream-threshold")?,
            "--drain-ms" => config.aio.drain_ms = flag_value("--drain-ms")? as u64,
            "--cache-bytes" => config.cache.byte_budget = flag_value("--cache-bytes")?,
            "--no-metrics" => config.metrics = false,
            "--sample-interval" => {
                config.sample_interval_ms = flag_value("--sample-interval")? as u64
            }
            "--slo" => {
                let path = it
                    .next()
                    .ok_or_else(|| format!("--slo needs a file\n{}", usage_of("serve")))?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                config.slo =
                    tpn_service::SloConfig::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            }
            "--alerts" => {
                let path = it
                    .next()
                    .ok_or_else(|| format!("--alerts needs a file\n{}", usage_of("serve")))?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                config.alerts = tpn_service::AlertsConfig::from_json(&text)
                    .map_err(|e| format!("{path}: {e}"))?;
            }
            "--log" => log_requested = true,
            "--log-sample" => log_sample = flag_value("--log-sample")? as u64,
            flag if flag.starts_with("--log=") => {
                log_requested = true;
                log_path = Some(flag["--log=".len()..].to_string());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}\n{}", usage_of("serve")))
            }
            a if addr.is_none() => addr = Some(a),
            extra => {
                return Err(format!(
                    "unexpected argument {extra:?}\n{}",
                    usage_of("serve")
                ))
            }
        }
    }
    if log_requested {
        if !config.metrics {
            return Err(format!(
                "--log requires metrics (drop --no-metrics)\n{}",
                usage_of("serve")
            ));
        }
        config.log = Some(tpn_service::LogConfig {
            path: log_path,
            sample: log_sample,
        });
    }
    let addr = addr.ok_or_else(|| usage_of("serve"))?;
    let io = config.io;
    let service = Arc::new(Service::new(config));
    let handle = tpn_service::spawn(service, addr).map_err(|e| format!("{addr}: {e}"))?;
    println!(
        "tpn-service listening on http://{} ({} listener)",
        handle.addr(),
        match io {
            tpn_service::IoMode::Epoll => "epoll",
            tpn_service::IoMode::Threaded => "threaded",
        }
    );
    println!(
        "endpoints: POST /v1 /analyze /graph /correctness /invariants /simulate /sweep /optimize \
         /whatif /alerts/silence · GET /healthz /stats /metrics /metrics/history /slo /alerts \
         /debug/requests /debug/slow"
    );
    handle.wait();
    Ok(())
}

/// Fetch one path from a daemon over a single `Connection: close`
/// HTTP/1.1 exchange. Returns the response body; non-200 statuses are
/// an error carrying the body text.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};

    let addr = addr.strip_prefix("http://").unwrap_or(addr);
    let addr = addr.strip_suffix('/').unwrap_or(addr);
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("{addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("{addr}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let status = head
        .split(' ')
        .nth(1)
        .ok_or_else(|| format!("{addr}: malformed status line"))?;
    if status != "200" {
        return Err(format!("{addr}{path}: HTTP {status}: {body}"));
    }
    Ok(body.to_string())
}

/// `tpn stats <addr> [--metrics] [--watch SECS] [--ticks N]` — fetch
/// and display a running daemon's counters. The default view renders
/// `/stats` as aligned `name  value` lines (nested objects flattened
/// with dotted names); `--metrics` prints the raw Prometheus
/// exposition instead. `--watch SECS` redraws every SECS seconds
/// (`--ticks N` stops after N frames; mostly for scripting and tests).
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let mut addr: Option<&str> = None;
    let mut raw_metrics = false;
    let mut watch: Option<u64> = None;
    let mut ticks: u64 = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<u64, String> {
            let v = it
                .next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage_of("stats")))?;
            v.parse()
                .map_err(|_| format!("bad {name} value {v:?}\n{}", usage_of("stats")))
        };
        match arg.as_str() {
            "--metrics" => raw_metrics = true,
            "--watch" => watch = Some(flag_value("--watch")?),
            "--ticks" => ticks = flag_value("--ticks")?,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}\n{}", usage_of("stats")))
            }
            a if addr.is_none() => addr = Some(a),
            extra => {
                return Err(format!(
                    "unexpected argument {extra:?}\n{}",
                    usage_of("stats")
                ))
            }
        }
    }
    let addr = addr.ok_or_else(|| usage_of("stats"))?;
    let frame = || -> Result<String, String> {
        if raw_metrics {
            return http_get(addr, "/metrics");
        }
        let body = http_get(addr, "/stats")?;
        let doc = tpn_service::Json::parse(&body).map_err(|e| format!("{addr}/stats: {e}"))?;
        let mut rows: Vec<(String, String)> = Vec::new();
        flatten_stats("", &doc, &mut rows)?;
        let table: Vec<Vec<String>> = rows.into_iter().map(|(k, v)| vec![k, v]).collect();
        Ok(aligned_table(&table))
    };
    match watch {
        None => {
            print!("{}", frame()?);
            Ok(())
        }
        Some(secs) => watch_loop(secs, ticks, frame),
    }
}

/// `tpn top <addr> [--interval SECS] [--window SECS] [--ticks N]` —
/// live terminal dashboard over `/metrics/history` and `/slo`:
/// service-wide req/s, cache hit ratio and RSS sparklines, then one
/// aligned row per endpoint with current rates, latency quantiles,
/// burn rates and health. Redraws every `--interval` seconds (default
/// 2); `--ticks N` stops after N frames (default: run until ^C).
fn cmd_top(args: &[String]) -> Result<(), String> {
    let mut addr: Option<&str> = None;
    let mut interval: u64 = 2;
    let mut window: u64 = 60;
    let mut ticks: u64 = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<u64, String> {
            let v = it
                .next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage_of("top")))?;
            v.parse()
                .map_err(|_| format!("bad {name} value {v:?}\n{}", usage_of("top")))
        };
        match arg.as_str() {
            "--interval" => interval = flag_value("--interval")?.max(1),
            "--window" => window = flag_value("--window")?.max(1),
            "--ticks" => ticks = flag_value("--ticks")?,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}\n{}", usage_of("top")))
            }
            a if addr.is_none() => addr = Some(a),
            extra => {
                return Err(format!(
                    "unexpected argument {extra:?}\n{}",
                    usage_of("top")
                ))
            }
        }
    }
    let addr = addr.ok_or_else(|| usage_of("top"))?;
    let step = interval.min(window);
    watch_loop(interval, ticks, || top_frame(addr, window, step))
}

/// `tpn alerts <addr> [--watch SECS] [--ticks N]` — render a running
/// daemon's `/alerts` document: one aligned row per rule (severity,
/// state, last value vs threshold, time in state, silenced), then the
/// most recent firing/resolved transitions. `--watch SECS` redraws
/// every SECS seconds (`--ticks N` stops after N frames).
fn cmd_alerts(args: &[String]) -> Result<(), String> {
    let mut addr: Option<&str> = None;
    let mut watch: Option<u64> = None;
    let mut ticks: u64 = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<u64, String> {
            let v = it
                .next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage_of("alerts")))?;
            v.parse()
                .map_err(|_| format!("bad {name} value {v:?}\n{}", usage_of("alerts")))
        };
        match arg.as_str() {
            "--watch" => watch = Some(flag_value("--watch")?),
            "--ticks" => ticks = flag_value("--ticks")?,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}\n{}", usage_of("alerts")))
            }
            a if addr.is_none() => addr = Some(a),
            extra => {
                return Err(format!(
                    "unexpected argument {extra:?}\n{}",
                    usage_of("alerts")
                ))
            }
        }
    }
    let addr = addr.ok_or_else(|| usage_of("alerts"))?;
    match watch {
        None => {
            print!("{}", alerts_frame(addr)?);
            Ok(())
        }
        Some(secs) => watch_loop(secs, ticks, || alerts_frame(addr)),
    }
}

/// Assemble one `tpn alerts` frame from a daemon's `/alerts` document.
fn alerts_frame(addr: &str) -> Result<String, String> {
    let body = http_get(addr, "/alerts")?;
    let doc = tpn_service::Json::parse(&body).map_err(|e| format!("{addr}/alerts: {e}"))?;
    let as_of_ms = json_f64(doc.get("as_of_ms")).unwrap_or(0.0);
    let firing = json_f64(doc.get("firing")).unwrap_or(0.0) as u64;
    let pending = json_f64(doc.get("pending")).unwrap_or(0.0) as u64;
    let mut out = format!("tpn alerts — {addr} · {firing} firing · {pending} pending\n\n");

    let str_col = |name: &str| -> Vec<String> {
        doc.get(name)
            .and_then(|a| a.as_arr())
            .map(|arr| {
                arr.iter()
                    .map(|v| v.as_str().unwrap_or("?").to_string())
                    .collect()
            })
            .unwrap_or_default()
    };
    let rules = str_col("rules");
    let severity = str_col("severity");
    let state = str_col("state");
    let since = float_col(doc.get("since_ms"));
    let value = float_col(doc.get("value"));
    let threshold = float_col(doc.get("threshold"));
    let silenced: Vec<bool> = doc
        .get("silenced")
        .and_then(|a| a.as_arr())
        .map(|arr| arr.iter().map(|v| v.as_bool().unwrap_or(false)).collect())
        .unwrap_or_default();

    let mut table: Vec<Vec<String>> = vec![[
        "rule",
        "severity",
        "state",
        "value",
        "threshold",
        "for",
        "silenced",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()];
    for (i, rule) in rules.iter().enumerate() {
        let in_state = since
            .get(i)
            .copied()
            .flatten()
            .map(|ms| format!("{:.0}s", (as_of_ms - ms).max(0.0) / 1_000.0));
        table.push(vec![
            rule.clone(),
            severity.get(i).cloned().unwrap_or_default(),
            state.get(i).cloned().unwrap_or_default(),
            fmt_opt(value.get(i).copied().flatten(), |v| format!("{v:.3}")),
            fmt_opt(threshold.get(i).copied().flatten(), |v| format!("{v:.3}")),
            in_state.unwrap_or_else(|| "-".to_string()),
            if silenced.get(i).copied().unwrap_or(false) {
                "yes".to_string()
            } else {
                "-".to_string()
            },
        ]);
    }
    if table.len() > 1 {
        out.push_str(&aligned_table(&table));
    } else {
        out.push_str("no alert rules configured\n");
    }

    let history: &[tpn_service::Json] = doc
        .get("history")
        .and_then(|h| h.as_arr())
        .unwrap_or_default();
    if !history.is_empty() {
        out.push_str("\nrecent transitions (oldest first):\n");
        let mut rows: Vec<Vec<String>> = Vec::new();
        for event in history.iter().rev().take(10).rev() {
            let ago = json_f64(event.get("ts_ms"))
                .map(|ms| format!("{:.0}s ago", (as_of_ms - ms).max(0.0) / 1_000.0))
                .unwrap_or_else(|| "-".to_string());
            rows.push(vec![
                format!("  {ago}"),
                event
                    .get("rule")
                    .and_then(|r| r.as_str())
                    .unwrap_or("?")
                    .to_string(),
                event
                    .get("event")
                    .and_then(|e| e.as_str())
                    .unwrap_or("?")
                    .to_string(),
                fmt_opt(json_f64(event.get("value")), |v| format!("{v:.3}")),
            ]);
        }
        out.push_str(&aligned_table(&rows));
    }
    Ok(out)
}

/// Assemble one `tpn top` frame from a daemon's `/metrics/history`
/// and `/slo` documents.
fn top_frame(addr: &str, window_s: u64, step_s: u64) -> Result<String, String> {
    // Only the leaf series the dashboard renders — the filter keeps the
    // transferred document small on daemons with many endpoints.
    let path = format!(
        "/metrics/history?window={window_s}&step={step_s}\
         &series=req_s,cache_hit_ratio,rss_bytes,err_s,p50_ns,p99_ns"
    );
    let history = http_get(addr, &path)?;
    let history = tpn_service::Json::parse(&history).map_err(|e| format!("{addr}{path}: {e}"))?;
    let stats_body = http_get(addr, "/stats")?;
    let stats = tpn_service::Json::parse(&stats_body).map_err(|e| format!("{addr}/stats: {e}"))?;
    let slo_body = http_get(addr, "/slo")?;
    let slo = tpn_service::Json::parse(&slo_body).map_err(|e| format!("{addr}/slo: {e}"))?;
    let alerts_body = http_get(addr, "/alerts")?;
    let alerts =
        tpn_service::Json::parse(&alerts_body).map_err(|e| format!("{addr}/alerts: {e}"))?;

    let status = slo.get("status").and_then(|s| s.as_str()).unwrap_or("?");
    let samples = json_f64(history.get("samples")).unwrap_or(0.0) as u64;
    let service = history.get("service");
    let req_s = float_col(service.and_then(|s| s.get("req_s")));
    let hit_ratio = float_col(service.and_then(|s| s.get("cache_hit_ratio")));
    let rss = float_col(history.get("process").and_then(|p| p.get("rss_bytes")));

    let mut out = format!(
        "tpn top — {addr} · status {status} · window {window_s}s step {step_s}s · {samples} samples\n"
    );
    // Banner row: names of the rules currently firing, if any.
    let firing: Vec<&str> = {
        let rules = alerts.get("rules").and_then(|a| a.as_arr()).unwrap_or(&[]);
        let states = alerts.get("state").and_then(|a| a.as_arr()).unwrap_or(&[]);
        rules
            .iter()
            .zip(states)
            .filter(|(_, s)| s.as_str() == Some("firing"))
            .filter_map(|(r, _)| r.as_str())
            .collect()
    };
    if !firing.is_empty() {
        out.push_str(&format!(
            "ALERTS: {} firing — {}\n",
            firing.len(),
            firing.join(", ")
        ));
    }
    out.push('\n');
    let headline = vec![
        vec![
            "req/s".to_string(),
            fmt_opt(last_value(&req_s), |v| format!("{v:.1}")),
            sparkline(&req_s),
        ],
        vec![
            "cache hit".to_string(),
            fmt_opt(last_value(&hit_ratio), |v| format!("{:.0}%", v * 100.0)),
            sparkline(&hit_ratio),
        ],
        vec![
            "rss".to_string(),
            fmt_opt(last_value(&rss), |v| {
                format!("{:.1} MiB", v / (1024.0 * 1024.0))
            }),
            sparkline(&rss),
        ],
        {
            let conns = stats.get("connections");
            let count = |key: &str| {
                json_f64(conns.and_then(|c| c.get(key)))
                    .map(|v| v as u64)
                    .unwrap_or(0)
            };
            vec![
                "conns".to_string(),
                format!("{} open", count("open")),
                format!(
                    "accepted {} · rejected {} · timeouts {} · drained {}",
                    count("accepted"),
                    count("rejected"),
                    count("timeouts"),
                    count("drained"),
                ),
            ]
        },
    ];
    out.push_str(&aligned_table(&headline));
    out.push('\n');

    // Per-endpoint burn rates and health from /slo, keyed by name.
    let slo_rows: &[tpn_service::Json] =
        slo.get("endpoints").and_then(|e| e.as_arr()).unwrap_or(&[]);
    let slo_of = |name: &str| -> Option<&tpn_service::Json> {
        slo_rows
            .iter()
            .find(|row| row.get("endpoint").and_then(|e| e.as_str()) == Some(name))
    };

    let mut table: Vec<Vec<String>> = vec![[
        "endpoint", "req/s", "err/s", "p50", "p99", "fast", "slow", "health",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()];
    let empty: &[(String, tpn_service::Json)] = &[];
    let endpoints = history
        .get("endpoints")
        .and_then(|e| e.as_obj())
        .unwrap_or(empty);
    for (name, cols) in endpoints {
        let slo_row = slo_of(name);
        table.push(vec![
            name.clone(),
            fmt_opt(last_value(&float_col(cols.get("req_s"))), |v| {
                format!("{v:.1}")
            }),
            fmt_opt(last_value(&float_col(cols.get("err_s"))), |v| {
                format!("{v:.1}")
            }),
            fmt_opt(last_value(&float_col(cols.get("p50_ns"))), fmt_ns),
            fmt_opt(last_value(&float_col(cols.get("p99_ns"))), fmt_ns),
            fmt_opt(worst_burn(slo_row, "fast"), |v| format!("{v:.2}")),
            fmt_opt(worst_burn(slo_row, "slow"), |v| format!("{v:.2}")),
            slo_row
                .and_then(|r| r.get("health"))
                .and_then(|h| h.as_str())
                .unwrap_or("-")
                .to_string(),
        ]);
    }
    // Objectives that are burning without traffic in the rendered
    // window (e.g. a since-boot slow window) still deserve a row.
    for row in slo_rows {
        let (Some(name), Some(health)) = (
            row.get("endpoint").and_then(|e| e.as_str()),
            row.get("health").and_then(|h| h.as_str()),
        ) else {
            continue;
        };
        if health == "ok" || endpoints.iter().any(|(n, _)| n == name) {
            continue;
        }
        table.push(vec![
            name.to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            fmt_opt(worst_burn(Some(row), "fast"), |v| format!("{v:.2}")),
            fmt_opt(worst_burn(Some(row), "slow"), |v| format!("{v:.2}")),
            health.to_string(),
        ]);
    }
    if table.len() > 1 {
        out.push_str(&aligned_table(&table));
    } else {
        out.push_str("no endpoint traffic in window\n");
    }
    Ok(out)
}

/// The worst of an `/slo` endpoint row's latency and error burns over
/// one window (`"fast"` or `"slow"`).
fn worst_burn(row: Option<&tpn_service::Json>, window: &str) -> Option<f64> {
    let w = row?.get(window)?;
    let latency = json_f64(w.get("latency_burn"));
    let error = json_f64(w.get("error_burn"));
    match (latency, error) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (one, other) => one.or(other),
    }
}

/// Redraw loop shared by `tpn top` and `tpn stats --watch`: render a
/// frame, clear the terminal (ANSI, only when stdout is a tty — piped
/// output stays parseable), print, sleep, repeat. `ticks == 0` runs
/// until interrupted; otherwise stops after that many frames.
fn watch_loop(
    interval_s: u64,
    ticks: u64,
    mut frame: impl FnMut() -> Result<String, String>,
) -> Result<(), String> {
    use std::io::{IsTerminal, Write};
    let clear = std::io::stdout().is_terminal();
    let mut drawn = 0u64;
    loop {
        let body = frame()?;
        if clear {
            print!("\x1b[2J\x1b[H");
        }
        print!("{body}");
        std::io::stdout().flush().ok();
        drawn += 1;
        if ticks != 0 && drawn >= ticks {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(interval_s.max(1)));
    }
}

/// Render rows as a left-aligned table, two spaces between columns,
/// trailing whitespace trimmed. Width is per column over all rows
/// (measured in chars — good enough for the box-drawing sparklines).
fn aligned_table(rows: &[Vec<String>]) -> String {
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            if i + 1 < row.len() {
                line.extend(std::iter::repeat_n(' ', widths[i] - cell.chars().count()));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// A JSON number as f64 (`None` for nulls and non-numbers).
fn json_f64(v: Option<&tpn_service::Json>) -> Option<f64> {
    v?.as_num()?.parse().ok()
}

/// A JSON array of numbers-or-nulls as a sample column.
fn float_col(v: Option<&tpn_service::Json>) -> Vec<Option<f64>> {
    v.and_then(|a| a.as_arr())
        .map(|arr| arr.iter().map(|x| json_f64(Some(x))).collect())
        .unwrap_or_default()
}

/// The most recent non-null sample of a column.
fn last_value(col: &[Option<f64>]) -> Option<f64> {
    col.iter().rev().flatten().next().copied()
}

fn fmt_opt(v: Option<f64>, f: impl Fn(f64) -> String) -> String {
    v.map(f).unwrap_or_else(|| "-".to_string())
}

/// Nanoseconds as a human latency (`870µs`, `1.24ms`, `2.1s`).
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// A column of samples as a unicode sparkline; nulls render as spaces.
fn sparkline(values: &[Option<f64>]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().flatten().copied().collect();
    if finite.is_empty() {
        return String::new();
    }
    let max = finite.iter().copied().fold(f64::MIN, f64::max);
    let min = finite.iter().copied().fold(f64::MAX, f64::min);
    values
        .iter()
        .map(|v| match v {
            None => ' ',
            Some(x) => {
                let t = if max > min {
                    (x - min) / (max - min)
                } else {
                    0.5
                };
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Flatten a `/stats` document into dotted `name → value` rows,
/// preserving the server's member order.
fn flatten_stats(
    prefix: &str,
    doc: &tpn_service::Json,
    rows: &mut Vec<(String, String)>,
) -> Result<(), String> {
    let members = doc
        .as_obj()
        .ok_or_else(|| format!("unexpected /stats shape at {prefix:?}"))?;
    for (key, value) in members {
        let name = if prefix.is_empty() {
            key.clone()
        } else {
            format!("{prefix}.{key}")
        };
        match value {
            tpn_service::Json::Obj(_) => flatten_stats(&name, value, rows)?,
            other => {
                let rendered = match other.as_num() {
                    Some(n) => n.to_string(),
                    None => other
                        .as_str()
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("{other:?}")),
                };
                rows.push((name, rendered));
            }
        }
    }
    Ok(())
}

/// `tpn batch <dir> [KIND..]` — one JSON line per `.tpn` file and
/// requested kind. Each file is **parsed once** and every kind runs
/// against the same shared session, so e.g.
/// `tpn batch nets analyze graph correctness` builds each net's TRG a
/// single time. Identical nets (by content digest) are computed once
/// across files too, thanks to the shared two-tier cache.
fn cmd_batch(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or_else(|| usage_of("batch"))?;
    let kind_names: Vec<&str> = if args.len() > 1 {
        args[1..].iter().map(String::as_str).collect()
    } else {
        vec!["analyze"]
    };
    let mut kinds = Vec::with_capacity(kind_names.len());
    for name in &kind_names {
        kinds.push(
            BATCH_KINDS
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, kind)| *kind)
                .ok_or_else(|| format!("unknown analysis {name:?}\n{}", usage_of("batch")))?,
        );
    }
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "tpn"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{dir}: no .tpn files"));
    }
    let service = Service::new(ServiceConfig::default());
    let mut failures = 0usize;
    for path in &files {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        match std::fs::read_to_string(path) {
            Err(e) => {
                failures += 1;
                println!(
                    "{{\"file\":{},\"error\":{}}}",
                    json::escape(&name),
                    json::escape(&e.to_string())
                );
            }
            Ok(src) => {
                // One parse, one session, every kind.
                for (status, body) in service.respond_many(&kinds, &src) {
                    if status == 200 {
                        // `body` already carries the digest; wrap it verbatim.
                        println!("{{\"file\":{},\"result\":{body}}}", json::escape(&name));
                    } else {
                        failures += 1;
                        // body is the {"error":…} document
                        println!(
                            "{{\"file\":{},\"status\":{status},\"result\":{body}}}",
                            json::escape(&name)
                        );
                    }
                }
            }
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} failure(s) over {} file(s)",
            files.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dispatched_command_is_in_the_table() {
        // run() special-cases these before the generic match; each must
        // stay documented in COMMANDS or `--help` would not mention it.
        for name in [
            "show",
            "dot",
            "graph",
            "analyze",
            "correctness",
            "invariants",
            "simulate",
            "sweep",
            "optimize",
            "whatif",
            "serve",
            "stats",
            "top",
            "alerts",
            "batch",
        ] {
            assert!(command_help(name).is_some(), "{name} missing from COMMANDS");
        }
    }

    #[test]
    fn aligned_table_pads_columns_and_trims_trailing_space() {
        let rows = vec![
            vec!["endpoint".to_string(), "req/s".to_string()],
            vec!["analyze".to_string(), "12.5".to_string()],
            vec!["v1".to_string(), "3.0".to_string()],
        ];
        assert_eq!(
            aligned_table(&rows),
            "endpoint  req/s\nanalyze   12.5\nv1        3.0\n"
        );
    }

    #[test]
    fn sparkline_scales_to_extremes_and_blanks_nulls() {
        let line = sparkline(&[Some(0.0), None, Some(1.0)]);
        assert_eq!(line, "▁ █");
        assert_eq!(sparkline(&[]), "");
        // A flat series renders mid-height, not a panic on max == min.
        assert_eq!(sparkline(&[Some(5.0), Some(5.0)]), "▅▅");
    }

    #[test]
    fn fmt_ns_picks_the_readable_unit() {
        assert_eq!(fmt_ns(870.0), "870ns");
        assert_eq!(fmt_ns(870_500.0), "870.5µs");
        assert_eq!(fmt_ns(1_240_000.0), "1.24ms");
        assert_eq!(fmt_ns(2_100_000_000.0), "2.10s");
    }

    #[test]
    fn batch_usage_names_every_accepted_kind() {
        let usage = usage_of("batch");
        for (name, _) in BATCH_KINDS {
            assert!(usage.contains(name), "{name} missing from {usage:?}");
        }
    }
}
