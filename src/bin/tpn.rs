//! `tpn` — command-line driver for Timed Petri Net analysis.
//!
//! ```text
//! tpn show <net.tpn>                    print the parsed net and statistics
//! tpn dot <net.tpn>                     Graphviz rendering of the net
//! tpn graph <net.tpn>                   timed reachability graph (state table + dot)
//! tpn analyze <net.tpn> [TRANSITION..]  decision graph, rates, throughputs
//! tpn correctness <net.tpn>             deadlock/safeness/liveness report
//! tpn invariants <net.tpn>              P- and T-semiflows
//! tpn simulate <net.tpn> [EVENTS [SEED]]  Monte-Carlo run
//! ```
//!
//! Nets use the `.tpn` text format documented in `tpn-net` (see the
//! README for an example). All analysis commands require fully timed
//! nets; symbolic analysis is a library-level feature (constraint sets
//! have no text syntax yet).

use std::process::ExitCode;

use timed_petri::prelude::*;
use tpn_net::invariant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tpn: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load(path: &str) -> Result<TimedPetriNet, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    tpn_net::parse_tpn(&src).map_err(|e| e.to_string())
}

type NumericPipeline = (
    tpn_reach::TimedReachabilityGraph<NumericDomain>,
    DecisionGraph<NumericDomain>,
    Performance<NumericDomain>,
);

fn pipeline(net: &TimedPetriNet) -> Result<NumericPipeline, String> {
    let domain = NumericDomain::new();
    let trg = build_trg(net, &domain, &TrgOptions::default()).map_err(|e| e.to_string())?;
    let dg = DecisionGraph::from_trg(&trg, &domain).map_err(|e| e.to_string())?;
    let rates = solve_rates(&dg, 0).map_err(|e| e.to_string())?;
    let perf = Performance::new(&dg, rates, &domain).map_err(|e| e.to_string())?;
    Ok((trg, dg, perf))
}

fn run(args: &[String]) -> Result<(), String> {
    let usage =
        "usage: tpn <show|dot|graph|analyze|correctness|invariants|simulate> <net.tpn> [args]";
    let cmd = args.first().ok_or(usage)?;
    let path = args.get(1).ok_or(usage)?;
    let net = load(path)?;
    match cmd.as_str() {
        "show" => {
            print!("{net}");
            let s = net.stats();
            println!(
                "\n{} places, {} transitions, {} arcs, {} conflict sets ({} non-trivial), {} initial tokens",
                s.places, s.transitions, s.arcs, s.conflict_sets, s.nontrivial_conflict_sets, s.initial_tokens
            );
            Ok(())
        }
        "dot" => {
            print!("{}", tpn_net::to_dot(&net));
            Ok(())
        }
        "graph" => {
            let domain = NumericDomain::new();
            let trg =
                build_trg(&net, &domain, &TrgOptions::default()).map_err(|e| e.to_string())?;
            println!(
                "{} states, {} edges, {} decision states, {} terminal states\n",
                trg.num_states(),
                trg.num_edges(),
                trg.decision_states().len(),
                trg.terminal_states().len()
            );
            print!("{}", trg.describe_states(&net));
            println!("\n{}", trg.to_dot(&net));
            Ok(())
        }
        "analyze" => {
            let (_, dg, perf) = pipeline(&net)?;
            println!("decision graph:");
            print!("{}", dg.describe(&net));
            println!("\nrates and weights (reference edge 0):");
            print!("{}", perf.describe(&net, &dg));
            println!("\nthroughput (firings per time unit):");
            let selected: Vec<String> = args[2..].to_vec();
            for t in net.transitions() {
                let name = net.transition(t).name();
                if !selected.is_empty() && !selected.iter().any(|s| s == name) {
                    continue;
                }
                let th = perf.throughput(&dg, t);
                println!("  {name:<16} {th}  ≈ {:.6}", th.to_f64());
            }
            Ok(())
        }
        "correctness" => {
            let domain = NumericDomain::new();
            let trg =
                build_trg(&net, &domain, &TrgOptions::default()).map_err(|e| e.to_string())?;
            let report = tpn_reach::analyze(&trg, &net);
            print!("{}", report.describe(&net));
            if report.is_correct() {
                println!("verdict: correct (deadlock-free, 1-safe, live, reversible)");
            } else {
                println!("verdict: NOT correct");
            }
            Ok(())
        }
        "invariants" => {
            println!("P-semiflows (conserved token sums):");
            for f in invariant::p_semiflows(&net) {
                let parts: Vec<String> = f
                    .support()
                    .into_iter()
                    .map(|p| {
                        let name = net.place_name(tpn_net::PlaceId::from_index(p));
                        let w = f.weights[p];
                        if w == 1 {
                            name.to_string()
                        } else {
                            format!("{w}·{name}")
                        }
                    })
                    .collect();
                println!(
                    "  {} = {}",
                    parts.join(" + "),
                    invariant::conserved_quantity(&net, &f)
                );
            }
            println!("T-semiflows (marking-reproducing firing counts):");
            for f in invariant::t_semiflows(&net) {
                let parts: Vec<String> = f
                    .support()
                    .into_iter()
                    .map(|t| {
                        let name = net.transition(tpn_net::TransId::from_index(t)).name();
                        let w = f.weights[t];
                        if w == 1 {
                            name.to_string()
                        } else {
                            format!("{w}·{name}")
                        }
                    })
                    .collect();
                println!("  {{{}}}", parts.join(", "));
            }
            println!(
                "covered by P-semiflows (structurally bounded): {}",
                invariant::covered_by_p_semiflows(&net)
            );
            Ok(())
        }
        "simulate" => {
            let events: u64 = args
                .get(2)
                .map(|s| s.parse().map_err(|_| format!("bad event count {s:?}")))
                .transpose()?
                .unwrap_or(1_000_000);
            let seed: u64 = args
                .get(3)
                .map(|s| s.parse().map_err(|_| format!("bad seed {s:?}")))
                .transpose()?
                .unwrap_or(0x5EED);
            let stats = simulate(
                &net,
                &SimOptions {
                    seed,
                    max_events: events,
                    ..SimOptions::default()
                },
            )
            .map_err(|e| e.to_string())?;
            print!("{}", stats.describe(&net));
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{usage}")),
    }
}
