//! `timed-petri` — derivation of performance expressions for
//! communication protocols from Timed Petri Net models.
//!
//! A faithful, production-quality Rust implementation of
//!
//! > Rami R. Razouk, *"The Derivation of Performance Expressions for
//! > Communication Protocols from Timed Petri Net Models"*,
//! > ACM SIGCOMM 1984 (UC Irvine ICS TR #211, 1983).
//!
//! This facade crate re-exports the entire workspace. The layering,
//! bottom-up:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`rational`] | `tpn-rational` | exact rational arithmetic |
//! | [`symbolic`] | `tpn-symbolic` | symbols, affine expressions, polynomials, rational functions, Fourier–Motzkin timing constraints |
//! | [`linalg`] | `tpn-linalg` | exact dense/sparse linear algebra over generic fields |
//! | [`net`] | `tpn-net` | the Timed Petri Net model, builder, validation, `.tpn` format |
//! | [`reach`] | `tpn-reach` | timed reachability graphs (numeric §2 and symbolic §3) |
//! | [`core`] | `tpn-core` | decision graphs, traversal rates, performance expressions |
//! | [`eval`] | `tpn-eval` | compiled expression evaluation and parallel parameter sweeps |
//! | [`opt`] | `tpn-opt` | parameter synthesis: certified optima of performance expressions |
//! | [`sim`] | `tpn-sim` | discrete-event Monte-Carlo validation |
//! | [`protocols`] | `tpn-protocols` | the paper's nets and parametric families |
//! | [`session`] | `tpn-session` | memoized typed-artifact pipeline: one handle, the whole chain |
//! | [`obs`] | `tpn-obs` | observability: lock-free latency histograms, Prometheus exposition, span traces |
//! | [`service`] | `tpn-service` | analysis daemon: two-tier cache, thread pool, HTTP + JSON |
//!
//! # Quickstart
//!
//! Reproduce the paper's protocol throughput (§4) through a
//! [`Session`](tpn_session::Session) — the derivation chain (net →
//! TRG → decision graph → rates → performance expressions) is computed
//! lazily, memoized, and shared with every later demand:
//!
//! ```
//! use timed_petri::prelude::*;
//!
//! // the paper's Figure-1 protocol with Figure-1b times
//! let proto = timed_petri::protocols::simple::paper();
//! let session = Session::new(proto.net.clone(), SessionOptions::new());
//!
//! assert_eq!(session.trg().unwrap().num_states(), 18); // the paper's Figure 4
//! let dg = session.decision_graph().unwrap();
//! let perf = session.performance().unwrap();
//! let t7 = proto.t[6]; // sender receives the ACK: a successfully
//!                      // acknowledged message (the paper's edge 2)
//! let throughput = perf.throughput(&dg, t7);
//! // ≈ 2.85 messages per second (times are in milliseconds)
//! assert!((throughput.to_f64() * 1000.0 - 2.8518).abs() < 1e-3);
//!
//! // Each stage was built exactly once, and a re-demand is a shared Arc.
//! assert_eq!(session.stage_stats(Stage::Trg).builds, 1);
//! assert!(std::sync::Arc::ptr_eq(&perf, &session.performance().unwrap()));
//! ```
//!
//! The stage-by-stage API (`build_trg`, `DecisionGraph::from_trg`,
//! `solve_rates`, `Performance::new`) remains available for callers
//! that need a single artifact with custom plumbing.

pub use tpn_aio as aio;
pub use tpn_core as core;
pub use tpn_eval as eval;
pub use tpn_linalg as linalg;
pub use tpn_net as net;
pub use tpn_obs as obs;
pub use tpn_opt as opt;
pub use tpn_protocols as protocols;
pub use tpn_rational as rational;
pub use tpn_reach as reach;
pub use tpn_service as service;
pub use tpn_session as session;
pub use tpn_sim as sim;
pub use tpn_symbolic as symbolic;

/// The commonly used names, for glob import.
pub mod prelude {
    pub use tpn_core::{
        solve_rates, solve_rates_with, DecisionGraph, ExprTarget, OptCertificate, OptGoal, Optimum,
        Performance, RateMethod, Rates,
    };
    pub use tpn_eval::{argbest_f64, sweep_exact, sweep_f64, Axis, Compiled, Grid, SweepOptions};
    pub use tpn_net::{Bag, Marking, NetBuilder, TimedPetriNet, TimingAssignment};
    pub use tpn_opt::{optimize, OptError, OptOptions};
    pub use tpn_rational::Rational;
    pub use tpn_reach::{
        analyze, build_trg, Interval, IntervalDomain, LiftedDomain, NumericDomain, SymbolicDomain,
        TrgOptions,
    };
    pub use tpn_service::{RequestKind, Service, ServiceConfig};
    pub use tpn_session::{
        RetimeError, Session, SessionError, SessionOptions, Stage, StageCounters,
    };
    pub use tpn_sim::{simulate, SimOptions};
    pub use tpn_symbolic::{Assignment, ConstraintSet, LinExpr, Poly, RatFn, Symbol};
}
